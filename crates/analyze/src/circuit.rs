//! Constant propagation through the 3-valued circuit.
//!
//! Evaluating every gate with all input pins and atoms at `?` computes
//! exactly the set of *structurally forced* gates: a gate whose value
//! under total ignorance is already `tt` or `ff` keeps that value under
//! every refinement (the paper's Fig. 5 lattice is monotone), so it can
//! be replaced by a constant. Unknown gates are rebuilt with their known
//! children pruned (`tt` conjuncts, `ff` disjuncts).

use absolver_core::{Circuit, Gate};
use absolver_logic::Tri;

/// Evaluates every gate of `circuit` with all inputs and atoms at `?`.
/// Entry `i` of the result is the forced value of gate `i` (`Unknown`
/// when the gate genuinely depends on its inputs).
pub fn forced_values(circuit: &Circuit) -> Vec<Tri> {
    let mut values: Vec<Tri> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let value = match gate {
            Gate::Const(v) => *v,
            Gate::BoolInput(_) | Gate::Atom(_) => Tri::Unknown,
            Gate::Not(a) => !values[*a],
            Gate::And(xs) => xs.iter().fold(Tri::True, |acc, &x| acc & values[x]),
            Gate::Or(xs) => xs.iter().fold(Tri::False, |acc, &x| acc | values[x]),
            Gate::Xor(a, b) => values[*a].xor(values[*b]),
            Gate::Implies(a, b) => values[*a].implies(values[*b]),
            Gate::Iff(a, b) => values[*a].iff(values[*b]),
        };
        values.push(value);
    }
    values
}

/// Rebuilds `circuit` with every structurally forced gate replaced by a
/// constant and known children pruned from conjunctions/disjunctions.
/// The result evaluates identically to the input on every assignment
/// (gate-for-gate: the circuits keep the same node numbering).
pub fn fold(circuit: &Circuit) -> Circuit {
    let values = forced_values(circuit);
    let mut out = Circuit::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        if values[i] != Tri::Unknown {
            out.constant(values[i]);
            continue;
        }
        match gate {
            Gate::Const(v) => {
                out.constant(*v);
            }
            Gate::BoolInput(idx) => {
                out.bool_input(*idx);
            }
            Gate::Atom(idx) => {
                out.atom(*idx);
            }
            Gate::Not(a) => {
                out.not(*a);
            }
            Gate::And(xs) => {
                // `tt` conjuncts are neutral; a `ff` conjunct would have
                // forced the gate, so only `?` children remain relevant.
                let live: Vec<usize> = xs
                    .iter()
                    .copied()
                    .filter(|&x| values[x] == Tri::Unknown)
                    .collect();
                out.and(live);
            }
            Gate::Or(xs) => {
                let live: Vec<usize> = xs
                    .iter()
                    .copied()
                    .filter(|&x| values[x] == Tri::Unknown)
                    .collect();
                out.or(live);
            }
            Gate::Xor(a, b) => {
                out.xor(*a, *b);
            }
            Gate::Implies(a, b) => {
                out.implies(*a, *b);
            }
            Gate::Iff(a, b) => {
                out.iff(*a, *b);
            }
        };
    }
    if let Some(o) = circuit.output() {
        out.set_output(o);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_testkit::{Rng, TestRng};

    fn tri(rng: &mut TestRng) -> Tri {
        match rng.gen_range(0..3) {
            0 => Tri::True,
            1 => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// A random circuit over 3 inputs and 3 atoms.
    fn random_circuit(rng: &mut TestRng) -> Circuit {
        let mut c = Circuit::new();
        let mut nodes = Vec::new();
        nodes.push(c.constant(tri(rng)));
        nodes.push(c.bool_input(rng.gen_range(0..3)));
        nodes.push(c.atom(rng.gen_range(0..3)));
        for _ in 0..rng.gen_range(3..12usize) {
            let pick = |rng: &mut TestRng, nodes: &[usize]| nodes[rng.gen_range(0..nodes.len())];
            let a = pick(rng, &nodes);
            let b = pick(rng, &nodes);
            let node = match rng.gen_range(0..7) {
                0 => c.constant(tri(rng)),
                1 => c.not(a),
                2 => c.and(vec![a, b]),
                3 => c.or(vec![a, b]),
                4 => c.xor(a, b),
                5 => c.implies(a, b),
                _ => c.iff(a, b),
            };
            nodes.push(node);
        }
        c.set_output(*nodes.last().unwrap());
        c
    }

    #[test]
    fn fold_preserves_evaluation() {
        let mut rng = TestRng::seed_from_u64(0xF01D);
        for round in 0..200 {
            let circuit = random_circuit(&mut rng);
            let folded = fold(&circuit);
            for _ in 0..10 {
                let inputs: Vec<Tri> = (0..3).map(|_| tri(&mut rng)).collect();
                let atoms: Vec<Tri> = (0..3).map(|_| tri(&mut rng)).collect();
                assert_eq!(
                    circuit.eval(&inputs, &atoms),
                    folded.eval(&inputs, &atoms),
                    "round {round}: fold changed the circuit's value"
                );
            }
        }
    }

    #[test]
    fn forced_gates_become_constants() {
        // atom ∧ ¬atom is `ff` in three-valued logic only when the atom
        // is known; under `?` it stays `?` — but `x ∨ ¬x ∨ tt` is forced.
        let mut c = Circuit::new();
        let a = c.atom(0);
        let na = c.not(a);
        let t = c.constant(Tri::True);
        let or = c.or(vec![a, na, t]);
        c.set_output(or);
        let values = forced_values(&c);
        assert_eq!(values[or], Tri::True);
        let folded = fold(&c);
        assert_eq!(folded.gates()[or], Gate::Const(Tri::True));
        assert_eq!(folded.eval(&[], &[Tri::Unknown]), Ok(Tri::True));
    }

    #[test]
    fn unknown_children_are_pruned() {
        let mut c = Circuit::new();
        let a = c.atom(0);
        let t = c.constant(Tri::True);
        let and = c.and(vec![a, t]);
        c.set_output(and);
        let folded = fold(&c);
        assert_eq!(folded.gates()[and], Gate::And(vec![a]));
    }
}
