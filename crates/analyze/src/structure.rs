//! Structural analysis over the interned term arena: subsumption and
//! dominance between constraints and clauses.
//!
//! PR 9's hash-consing makes structural equality an id comparison, so
//! these passes are cheap: duplicate constraints are found by hashing
//! [`ConstraintId`]s, affine dominance by hashing the *normalized* affine
//! row ([`NlConstraint::normalized_affine`]), and clause subsumption by
//! literal occurrence lists with per-clause hit counting. The same
//! machinery backs two consumers with different contracts:
//!
//! * the **linter** ([`crate::check_problem`]) reports findings as
//!   AB013–AB016 diagnostics without touching the problem;
//! * the **simplifier** ([`crate::Simplifier`]) drops what the analysis
//!   proves redundant — all rewrites here are equivalence-preserving on
//!   the conjunction/CNF, so model reconstruction needs no extra entries.

use absolver_core::AbProblem;
use absolver_linear::CmpOp;
use absolver_logic::Lit;
use absolver_nonlinear::NlConstraint;
use absolver_num::Rational;
use std::collections::HashMap;

/// What pruning a single definition's conjunction found. Indexes refer
/// to positions in the constraint slice handed to
/// [`prune_conjunction`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConjunctionPruning {
    /// Indexes of the constraints that survive, in original order.
    pub kept: Vec<usize>,
    /// `(duplicate, first)` pairs: the constraint at `duplicate` has the
    /// same interned id as the earlier one at `first`.
    pub duplicates: Vec<(usize, usize)>,
    /// `(dominated, dominating)` pairs: both constraints are affine over
    /// the same normalized row and the one at `dominating` implies the
    /// one at `dominated` pointwise (e.g. `a·x ≤ b` implies `a·x ≤ b'`
    /// for every `b ≤ b'`).
    pub dominated: Vec<(usize, usize)>,
    /// Two affine constraints on the same row that no real point
    /// satisfies together (`row ≥ l ∧ row ≤ u` with `l > u`, or `l = u`
    /// with a strict side): the conjunction — and therefore the defined
    /// atom — can never hold.
    pub contradiction: Option<(usize, usize)>,
}

impl ConjunctionPruning {
    /// Number of conjuncts the pass would drop (duplicates + dominated).
    pub fn dropped(&self) -> usize {
        self.duplicates.len() + self.dominated.len()
    }
}

/// The strongest lower/upper threshold seen so far for one normalized
/// affine row, with the index of the constraint that set it.
#[derive(Debug, Clone)]
struct RowBounds {
    /// `(threshold, strict, index)` of the strongest `≥`/`>` constraint.
    lower: Option<(Rational, bool, usize)>,
    /// `(threshold, strict, index)` of the strongest `≤`/`<` constraint.
    upper: Option<(Rational, bool, usize)>,
}

/// Whether `(a, a_strict)` is a strictly stronger *upper* bound than
/// `(b, b_strict)` — i.e. `row ⋖ a` implies `row ⋖ b` but not vice
/// versa. A smaller threshold always wins; on equal thresholds the
/// strict comparison wins.
fn stronger_upper(a: &(Rational, bool), b: &(Rational, bool)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 && !b.1)
}

/// Analyzes one definition's conjunction for duplicate, dominated, and
/// contradictory conjuncts. Only affine constraints participate in
/// dominance (a nonlinear LHS has no normalized row); `=` constraints
/// participate in duplicate detection only.
pub fn prune_conjunction(constraints: &[NlConstraint]) -> ConjunctionPruning {
    let mut out = ConjunctionPruning::default();
    let mut first_by_cid: HashMap<u32, usize> = HashMap::new();
    let mut rows: HashMap<absolver_linear::LinExpr, RowBounds> = HashMap::new();
    let mut dropped = vec![false; constraints.len()];

    for (i, c) in constraints.iter().enumerate() {
        if let Some(&first) = first_by_cid.get(&c.cid().raw()) {
            out.duplicates.push((i, first));
            dropped[i] = true;
            continue;
        }
        first_by_cid.insert(c.cid().raw(), i);

        let Some((row, op, threshold)) = c.normalized_affine() else {
            continue;
        };
        if op == CmpOp::Eq {
            continue;
        }
        let bounds = rows.entry(row).or_insert(RowBounds {
            lower: None,
            upper: None,
        });
        let strict = op.is_strict();
        match op {
            CmpOp::Le | CmpOp::Lt => match &bounds.upper {
                Some((t, s, j)) => {
                    if stronger_upper(&(threshold.clone(), strict), &(t.clone(), *s)) {
                        out.dominated.push((*j, i));
                        dropped[*j] = true;
                        bounds.upper = Some((threshold, strict, i));
                    } else {
                        out.dominated.push((i, *j));
                        dropped[i] = true;
                    }
                }
                None => bounds.upper = Some((threshold, strict, i)),
            },
            CmpOp::Ge | CmpOp::Gt => match &bounds.lower {
                // A lower bound `row ⋗ t` is the upper bound `−row ⋖ −t`;
                // larger thresholds are stronger.
                Some((t, s, j)) => {
                    if stronger_upper(&(-threshold.clone(), strict), &(-t.clone(), *s)) {
                        out.dominated.push((*j, i));
                        dropped[*j] = true;
                        bounds.lower = Some((threshold, strict, i));
                    } else {
                        out.dominated.push((i, *j));
                        dropped[i] = true;
                    }
                }
                None => bounds.lower = Some((threshold, strict, i)),
            },
            CmpOp::Eq => unreachable!("Eq filtered above"),
        }
        if out.contradiction.is_none() {
            if let (Some((l, ls, li)), Some((u, us, ui))) = (&bounds.lower, &bounds.upper) {
                if l > u || (l == u && (*ls || *us)) {
                    out.contradiction = Some((*li.min(ui), *li.max(ui)));
                }
            }
        }
    }

    out.kept = (0..constraints.len()).filter(|&i| !dropped[i]).collect();
    out.duplicates.sort_unstable();
    out.dominated.sort_unstable();
    out
}

/// `(subsumed, by)` pairs over a clause set: clause `subsumed` contains
/// every literal of the strictly shorter clause `by`, so the CNF is
/// unchanged by dropping `subsumed`. Input clauses are `(original
/// index, sorted deduplicated literals)`; tautologies should be
/// filtered by the caller. Each subsumed clause is reported once, with
/// the shortest (then lowest-slot) subsumer; pairs come back sorted by
/// the subsumed index.
pub fn subsumed_clauses(clauses: &[(usize, Vec<Lit>)]) -> Vec<(usize, usize)> {
    let mut occurrences: HashMap<usize, Vec<usize>> = HashMap::new();
    for (slot, (_, lits)) in clauses.iter().enumerate() {
        for l in lits {
            occurrences.entry(l.code()).or_default().push(slot);
        }
    }
    // Shortest subsumers first: a subsumed clause is only ever subsumed
    // by a strictly shorter one, so by the time a clause's turn comes,
    // its own subsumption status is final.
    let mut order: Vec<usize> = (0..clauses.len()).collect();
    order.sort_by_key(|&s| (clauses[s].1.len(), s));
    let mut subsumed_by: Vec<Option<usize>> = vec![None; clauses.len()];
    let mut hits = vec![0usize; clauses.len()];
    for slot in order {
        let lits = &clauses[slot].1;
        if subsumed_by[slot].is_some() || lits.is_empty() {
            // A clause that is itself redundant still subsumes whatever
            // its subsumer does, so skipping it loses nothing.
            continue;
        }
        let mut touched: Vec<usize> = Vec::new();
        for l in lits {
            for &other in &occurrences[&l.code()] {
                if hits[other] == 0 {
                    touched.push(other);
                }
                hits[other] += 1;
            }
        }
        for &other in &touched {
            if other != slot
                && hits[other] == lits.len()
                && clauses[other].1.len() > lits.len()
                && subsumed_by[other].is_none()
            {
                subsumed_by[other] = Some(slot);
            }
            hits[other] = 0;
        }
    }
    let mut pairs: Vec<(usize, usize)> = subsumed_by
        .iter()
        .enumerate()
        .filter_map(|(slot, by)| by.map(|b| (clauses[slot].0, clauses[b].0)))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// One constraint repeated verbatim (same interned id) in the
/// definitions of two different Boolean variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossDefDuplicate {
    /// The later variable whose definition repeats the constraint.
    pub var: u32,
    /// Index of the repeated constraint inside `var`'s conjunction.
    pub constraint: usize,
    /// The earlier variable that already carries the constraint.
    pub earlier_var: u32,
}

/// Cross-definition duplicate constraints (AB013 material). A pair of
/// *wholly identical* definitions is excluded — that is a shadowed def,
/// which AB005 already reports.
pub fn cross_def_duplicates(problem: &AbProblem) -> Vec<CrossDefDuplicate> {
    // Identical-definition keys (sorted constraint-id multisets).
    let mut def_keys: HashMap<u32, Vec<u32>> = HashMap::new();
    for (var, def) in problem.defs() {
        let mut key: Vec<u32> = def.constraints.iter().map(|c| c.cid().raw()).collect();
        key.sort_unstable();
        def_keys.insert(var.index() as u32, key);
    }
    let mut first_owner: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for (var, def) in problem.defs() {
        let v = var.index() as u32;
        for (i, c) in def.constraints.iter().enumerate() {
            match first_owner.get(&c.cid().raw()) {
                Some(&earlier) if earlier != v => {
                    if def_keys[&v] != def_keys[&earlier] {
                        out.push(CrossDefDuplicate {
                            var: v,
                            constraint: i,
                            earlier_var: earlier,
                        });
                    }
                }
                Some(_) => {}
                None => {
                    first_owner.insert(c.cid().raw(), v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;
    use absolver_num::Rational;

    fn le(k: i64, b: i64) -> NlConstraint {
        // k·x ≤ b
        NlConstraint::new(
            Expr::constant(Rational::from_int(k)) * Expr::var(0),
            CmpOp::Le,
            Rational::from_int(b),
        )
    }

    fn ge(k: i64, b: i64) -> NlConstraint {
        NlConstraint::new(
            Expr::constant(Rational::from_int(k)) * Expr::var(0),
            CmpOp::Ge,
            Rational::from_int(b),
        )
    }

    #[test]
    fn duplicate_conjuncts_are_found_by_id() {
        let p = prune_conjunction(&[le(1, 5), ge(1, 0), le(1, 5)]);
        assert_eq!(p.duplicates, vec![(2, 0)]);
        assert_eq!(p.kept, vec![0, 1]);
        assert!(p.contradiction.is_none());
    }

    #[test]
    fn weaker_upper_bound_is_dominated() {
        // x ≤ 3 implies x ≤ 5.
        let p = prune_conjunction(&[le(1, 5), le(1, 3)]);
        assert_eq!(p.dominated, vec![(0, 1)]);
        assert_eq!(p.kept, vec![1]);
    }

    #[test]
    fn negative_scale_normalizes_to_the_same_row() {
        // −2·x ≥ −10 is x ≤ 5, dominated by x ≤ 3.
        let p = prune_conjunction(&[ge(-2, -10), le(1, 3)]);
        assert_eq!(p.dominated, vec![(0, 1)]);
    }

    #[test]
    fn contradictory_bounds_are_reported() {
        // x ≥ 4 ∧ x ≤ 1.
        let p = prune_conjunction(&[ge(1, 4), le(1, 1)]);
        assert_eq!(p.contradiction, Some((0, 1)));
    }

    #[test]
    fn equal_bounds_without_strictness_are_no_contradiction() {
        // x ≥ 2 ∧ x ≤ 2 pins x = 2: satisfiable.
        let p = prune_conjunction(&[ge(1, 2), le(1, 2)]);
        assert!(p.contradiction.is_none());
        assert_eq!(p.kept, vec![0, 1]);
    }

    #[test]
    fn strict_beats_nonstrict_on_equal_threshold() {
        // x < 3 implies x ≤ 3.
        let lt = NlConstraint::new(Expr::var(0), CmpOp::Lt, Rational::from_int(3));
        let p = prune_conjunction(&[le(1, 3), lt]);
        assert_eq!(p.dominated, vec![(0, 1)]);
        assert_eq!(p.kept, vec![1]);
    }

    #[test]
    fn clause_subsumption_needs_a_strict_subset() {
        use absolver_logic::Var;
        let a = Var::new(0).positive();
        let b = Var::new(1).positive();
        let c = Var::new(2).positive();
        let clauses = vec![
            (0usize, vec![a, b, c]), // subsumed by 2
            (1, vec![b, c]),         // subsumed by 2? {b} ⊄ {b,c}... by {b}: yes
            (2, vec![b]),
            (3, vec![a, c]), // no subset present
        ];
        let pairs = subsumed_clauses(&clauses);
        assert_eq!(pairs, vec![(0, 2), (1, 2)]);
    }
}
