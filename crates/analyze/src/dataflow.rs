//! Interval dataflow: an abstract-interpretation fixpoint over the
//! arithmetic domains, with provenance.
//!
//! The analysis mirrors the soundness discipline of the simplifier's
//! range-tightening pass ([`crate::Simplifier`]): only constraints that
//! hold in *every* model may narrow a domain, and narrowing starts from
//! the **entire** real line, never from the declared `range` box —
//! declared ranges only seed the nonlinear engine's search and do not
//! bind the other engines. The forced-constraint set is computed by a
//! read-only Boolean unit propagation of the CNF skeleton: a unit-forced
//! `tt` atom asserts all its conjuncts, a unit-forced `ff` atom with a
//! single-constraint definition asserts the (single-constraint) negation.
//!
//! Each [`hc4_revise`] call that narrows a variable appends a
//! [`ProvenanceStep`], so every derived bound carries the chain of
//! constraints that produced it. An emptied domain is a rigorous
//! refutation — the problem is statically unsatisfiable before the
//! solver runs (surfaced as AB017 by the linter and as an immediate
//! `Unsat` by the preprocessor path).

use absolver_core::AbProblem;
use absolver_logic::Lit;
use absolver_nonlinear::hc4::{hc4_revise, Contraction};
use absolver_nonlinear::NlConstraint;
use absolver_num::Interval;

/// One narrowing step of the fixpoint: revising `constraint` shrank
/// variable `var` from `before` to `after`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceStep {
    /// Index into [`Dataflow::asserted`] of the revised constraint.
    pub constraint: usize,
    /// The narrowed arithmetic variable.
    pub var: usize,
    /// The variable's domain before the revision.
    pub before: Interval,
    /// The domain after (empty when the revision refuted the problem).
    pub after: Interval,
}

/// How the fixpoint ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowVerdict {
    /// The fixpoint converged (or hit the round bound) with every domain
    /// non-empty: no static refutation.
    Converged,
    /// Boolean unit propagation alone derived a conflict (an empty
    /// clause, or complementary forced literals): no model exists.
    BoolConflict,
    /// Revising the constraint at this index of [`Dataflow::asserted`]
    /// emptied a domain: no real point satisfies the forced conjunction,
    /// so the problem is statically unsatisfiable.
    EmptyDomain(usize),
}

/// Result of the interval-dataflow analysis of one problem.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// How the fixpoint ended.
    pub verdict: DataflowVerdict,
    /// The derived hull per arithmetic variable (entire when nothing
    /// narrowed it). Meaningful only for a [`DataflowVerdict::Converged`]
    /// run — a refuted run stops mid-sweep.
    pub derived: Vec<Interval>,
    /// The constraints that hold in every model (the narrowing set).
    pub asserted: Vec<NlConstraint>,
    /// Every narrowing step, in application order. The chain for one
    /// variable is the subsequence with that `var`.
    pub provenance: Vec<ProvenanceStep>,
    /// Literals forced by the Boolean unit-propagation prepass.
    pub forced: Vec<Lit>,
    /// Fixpoint sweeps actually run.
    pub rounds: u64,
}

impl Dataflow {
    /// The provenance chain that produced variable `var`'s derived
    /// bound, oldest step first.
    pub fn chain_for(&self, var: usize) -> Vec<&ProvenanceStep> {
        self.provenance.iter().filter(|s| s.var == var).collect()
    }
}

/// Read-only Boolean unit propagation over the CNF skeleton. Returns the
/// forced value per variable, or `None` on conflict.
fn unit_fixpoint(problem: &AbProblem) -> Option<Vec<Option<bool>>> {
    let mut fixed: Vec<Option<bool>> = vec![None; problem.cnf().num_vars()];
    loop {
        let mut changed = false;
        for clause in problem.cnf().clauses() {
            let mut unassigned: Option<Lit> = None;
            let mut live = 0usize;
            let mut satisfied = false;
            for &lit in clause.lits() {
                match fixed[lit.var().index()] {
                    Some(v) if v == lit.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        live += 1;
                        unassigned = Some(lit);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match (live, unassigned) {
                (0, _) => return None, // falsified clause
                (1, Some(lit)) => {
                    fixed[lit.var().index()] = Some(lit.is_positive());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return Some(fixed);
        }
    }
}

/// Runs the interval-dataflow fixpoint over `problem`, bounded by
/// `max_rounds` sweeps of the forced-constraint set.
pub fn dataflow(problem: &AbProblem, max_rounds: usize) -> Dataflow {
    let num_arith = problem.arith_vars().len();
    let Some(fixed) = unit_fixpoint(problem) else {
        return Dataflow {
            verdict: DataflowVerdict::BoolConflict,
            derived: vec![Interval::ENTIRE; num_arith],
            asserted: Vec::new(),
            provenance: Vec::new(),
            forced: Vec::new(),
            rounds: 0,
        };
    };
    let forced: Vec<Lit> = fixed
        .iter()
        .enumerate()
        .filter_map(|(v, value)| {
            value.map(|value| {
                let var = absolver_logic::Var::new(v as u32);
                if value {
                    var.positive()
                } else {
                    var.negative()
                }
            })
        })
        .collect();

    let mut asserted: Vec<NlConstraint> = Vec::new();
    for (var, def) in problem.defs() {
        match fixed[var.index()] {
            Some(true) => asserted.extend(def.constraints.iter().cloned()),
            Some(false) if def.constraints.len() == 1 => {
                // ¬(single constraint) is assertable only when the
                // negation is again a single constraint (`=` splits into
                // a disjunction HC4 cannot assert).
                if let [only] = def.constraints[0].negate().as_slice() {
                    asserted.push(only.clone());
                }
            }
            _ => {}
        }
    }

    let mut hull = vec![Interval::ENTIRE; num_arith];
    let mut provenance: Vec<ProvenanceStep> = Vec::new();
    let mut rounds = 0u64;
    let mut verdict = DataflowVerdict::Converged;
    'sweeps: for _ in 0..max_rounds {
        rounds += 1;
        let mut changed = false;
        for (ci, c) in asserted.iter().enumerate() {
            let before: Vec<Interval> = c.variables().iter().map(|&v| hull[v]).collect();
            let contraction = hc4_revise(c, &mut hull);
            if contraction != Contraction::Unchanged {
                for (&v, &b) in c.variables().iter().zip(&before) {
                    if hull[v] != b {
                        provenance.push(ProvenanceStep {
                            constraint: ci,
                            var: v,
                            before: b,
                            after: hull[v],
                        });
                    }
                }
            }
            match contraction {
                Contraction::Empty => {
                    verdict = DataflowVerdict::EmptyDomain(ci);
                    break 'sweeps;
                }
                Contraction::Changed => changed = true,
                Contraction::Unchanged => {}
            }
        }
        if !changed {
            break;
        }
    }

    Dataflow {
        verdict,
        derived: hull,
        asserted,
        provenance,
        forced,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> AbProblem {
        text.parse().unwrap()
    }

    #[test]
    fn forced_constraints_derive_bounds_with_provenance() {
        let p = parse("p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 2\nc def real 2 x <= 7\n");
        let df = dataflow(&p, 8);
        assert_eq!(df.verdict, DataflowVerdict::Converged);
        let x = p.arith_var("x").unwrap();
        assert!(df.derived[x].lo() >= 2.0 && df.derived[x].hi() <= 7.0);
        let chain = df.chain_for(x);
        assert!(chain.len() >= 2, "both bounds leave a step: {chain:?}");
    }

    #[test]
    fn contradictory_forced_constraints_are_statically_unsat() {
        let p = parse("p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 0\n");
        let df = dataflow(&p, 8);
        assert_eq!(df.verdict, DataflowVerdict::EmptyDomain(1));
        // The chain that led to the refutation is recorded (hc4's forward
        // pass may detect emptiness without writing an empty interval
        // back, so the *last* step need not itself be empty).
        assert!(!df.provenance.is_empty());
    }

    #[test]
    fn unforced_atoms_do_not_narrow() {
        // Variable 1 appears in a non-unit clause only: nothing is
        // forced, nothing narrows.
        let p = parse("p cnf 2 1\n1 2 0\nc def real 1 x >= 5\n");
        let df = dataflow(&p, 8);
        assert_eq!(df.verdict, DataflowVerdict::Converged);
        let x = p.arith_var("x").unwrap();
        assert_eq!(df.derived[x], Interval::ENTIRE);
        assert!(df.asserted.is_empty());
    }

    #[test]
    fn negated_single_constraint_defs_assert_their_negation() {
        let p = parse("p cnf 1 1\n-1 0\nc def real 1 x <= 0\n");
        let df = dataflow(&p, 8);
        let x = p.arith_var("x").unwrap();
        assert!(df.derived[x].lo() >= 0.0, "¬(x ≤ 0) narrows to x > 0");
    }

    #[test]
    fn boolean_conflict_is_detected() {
        let p = parse("p cnf 2 3\n1 0\n-1 2 0\n-2 0\n");
        let df = dataflow(&p, 8);
        assert_eq!(df.verdict, DataflowVerdict::BoolConflict);
    }

    #[test]
    fn propagation_crosses_constraints() {
        // x ≥ 3 and x − y = 0 force y ≥ 3 through the equality.
        let p = parse("p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 3\nc def real 2 x - y = 0\n");
        let df = dataflow(&p, 8);
        let y = p.arith_var("y").unwrap();
        // Outward interval rounding may leave the bound one ulp shy of 3.
        assert!(df.derived[y].lo() >= 2.999, "got {:?}", df.derived[y]);
        assert_eq!(df.derived[y].hi(), f64::INFINITY);
    }
}
