//! Static analyzer for AB-problems: compiler-style diagnostics and an
//! equisatisfiable preprocessor.
//!
//! The crate has two halves, mirroring a compiler front-end:
//!
//! * **Diagnostics** ([`check_source`] / [`check_problem`]): lint a
//!   `.dimacs` AB-problem and produce a [`Report`] of findings, each with
//!   a severity, a stable `AB0xx` code, and a source span. Rendered in a
//!   human `file:line:col:` form or as stable JSON by `absolver check`.
//! * **Preprocessing** ([`Simplifier`]): an equisatisfiable simplifier
//!   that runs before the solver — constant propagation, unit-clause and
//!   pure-literal elimination, statically-decided theory atoms,
//!   subsumption/dominance pruning, and HC4-based range tightening —
//!   with a model-reconstruction map so satisfying assignments lift back
//!   to the original problem.
//!
//! Both halves are fed by the semantic analyses of [`structure`]
//! (incidence-graph partitioning, subsumption, affine dominance) and
//! [`dataflow`] (an interval abstract-interpretation fixpoint with
//! provenance), which PR 9's hash-consed term arena makes cheap:
//! structural comparison is id comparison.
//!
//! # Diagnostic codes
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | AB001 | error    | input failed to parse |
//! | AB002 | warning  | duplicate constraint within one `def` |
//! | AB003 | warning  | defined variable occurs in no clause |
//! | AB004 | error    | contradictory `range` directives (empty box) |
//! | AB005 | warning  | two variables carry identical definitions |
//! | AB006 | warning  | tautological clause |
//! | AB007 | error    | empty clause or complementary unit clauses |
//! | AB008 | warning  | clause variable beyond the declared header count |
//! | AB009 | warning  | duplicate clause |
//! | AB010 | warning  | theory atom statically true in the declared box |
//! | AB011 | warning  | theory atom statically false in the declared box |
//! | AB012 | warning  | declared arithmetic variable used in no `def` |
//! | AB013 | warning  | constraint repeated verbatim across two `def`s |
//! | AB014 | warning  | affine-dominated (redundant) conjunct in one `def` |
//! | AB015 | warning  | contradictory affine conjuncts in one `def` |
//! | AB016 | warning  | clause subsumed by a strictly shorter clause |
//! | AB017 | error    | statically unsatisfiable (interval dataflow) |
//! | AB018 | warning  | declared range misses every derivable value |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod check;
pub mod circuit;
pub mod dataflow;
pub mod diag;
pub mod simplify;
pub mod structure;

pub use check::{check_problem, check_source};
pub use circuit::{fold, forced_values};
pub use dataflow::{dataflow, Dataflow, DataflowVerdict, ProvenanceStep};
pub use diag::{Code, Diagnostic, Report, Severity, StructureSummary};
pub use simplify::Simplifier;
pub use structure::{
    cross_def_duplicates, prune_conjunction, subsumed_clauses, ConjunctionPruning,
    CrossDefDuplicate,
};
