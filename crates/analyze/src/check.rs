//! The diagnostic passes (the compiler-style half of the analyzer).
//!
//! [`check_source`] parses an extended-DIMACS text and runs every pass,
//! anchoring findings on the [`SourceMap`] the parser collected; the
//! result is a [`Report`] renderable in human or JSON form. See the
//! crate docs for the code table.

use crate::diag::{Code, Diagnostic, Report};
use absolver_core::{parse_spanned, AbProblem, SourceMap, Span};
use absolver_nonlinear::IntervalVerdict;
use absolver_num::Interval;
use std::collections::HashMap;

/// Parses `text` and runs all diagnostic passes. A parse failure yields a
/// single [`Code::AB001`] error carrying the parser's span.
pub fn check_source(text: &str) -> Report {
    match parse_spanned(text) {
        Ok((problem, map)) => check_problem(&problem, &map),
        Err(e) => {
            let mut report = Report::default();
            let span = e.span().unwrap_or(Span::new(1, 1));
            report.push(Diagnostic::new(Code::AB001, span, e.message()));
            report
        }
    }
}

/// Runs all diagnostic passes over an already-parsed problem and its
/// source map.
pub fn check_problem(problem: &AbProblem, map: &SourceMap) -> Report {
    let mut report = Report::default();
    check_defs(problem, map, &mut report);
    check_ranges(problem, map, &mut report);
    check_declared_vars(problem, map, &mut report);
    check_clauses(problem, map, &mut report);
    check_static_atoms(problem, map, &mut report);
    report.sort();
    report
}

/// Renders a constraint with the problem's variable names in place of the
/// internal `v<id>` placeholders (descending id so `v12` is not clobbered
/// by `v1`).
fn pretty(problem: &AbProblem, constraint: &absolver_nonlinear::NlConstraint) -> String {
    let mut s = constraint.to_string();
    for &id in constraint.variables().iter().rev() {
        s = s.replace(&format!("v{id}"), &problem.arith_vars()[id].name);
    }
    s
}

/// First `def` directive span per Boolean variable.
fn first_def_sites(map: &SourceMap) -> HashMap<u32, Span> {
    let mut first: HashMap<u32, Span> = HashMap::new();
    for site in &map.def_sites {
        first.entry(site.var).or_insert(site.span);
    }
    first
}

/// AB002 (duplicate constraint in one def), AB003 (def never in a
/// clause), AB005 (shadowed def).
fn check_defs(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let first = first_def_sites(map);
    let site_of = |var: u32, constraint: usize| {
        map.def_sites
            .iter()
            .find(|s| s.var == var && s.constraint == constraint)
            .map(|s| s.span)
            .unwrap_or(Span::new(1, 1))
    };

    // AB002: repeated constraint within one definition's conjunction.
    for (var, def) in problem.defs() {
        let rendered: Vec<String> = def.constraints.iter().map(|c| pretty(problem, c)).collect();
        for j in 1..rendered.len() {
            if rendered[..j].contains(&rendered[j]) {
                let v = var.index() as u32;
                report.push(Diagnostic::new(
                    Code::AB002,
                    site_of(v, j),
                    format!(
                        "definition of variable {} repeats the constraint `{}`",
                        v + 1,
                        rendered[j]
                    ),
                ));
            }
        }
    }

    // AB003: defined variable that no clause ever mentions — the solver
    // will pick its polarity freely, which is rarely what a generator
    // meant to emit.
    let mut occurs = vec![false; problem.cnf().num_vars()];
    for clause in problem.cnf().clauses() {
        for lit in clause.lits() {
            occurs[lit.var().index()] = true;
        }
    }
    for (var, _) in problem.defs() {
        if !occurs[var.index()] {
            let v = var.index() as u32;
            report.push(Diagnostic::new(
                Code::AB003,
                first.get(&v).copied().unwrap_or(Span::new(1, 1)),
                format!("variable {} is defined but occurs in no clause", v + 1),
            ));
        }
    }

    // AB005: two Boolean variables carrying identical conjunctions. The
    // later one shadows the earlier — almost always a generator slip.
    let mut canon: HashMap<Vec<String>, u32> = HashMap::new();
    for (var, def) in problem.defs() {
        let v = var.index() as u32;
        let mut key: Vec<String> = def.constraints.iter().map(|c| c.to_string()).collect();
        key.sort();
        match canon.get(&key) {
            Some(&earlier) => {
                report.push(Diagnostic::new(
                    Code::AB005,
                    first.get(&v).copied().unwrap_or(Span::new(1, 1)),
                    format!(
                        "definition of variable {} is identical to the definition \
                         of variable {}",
                        v + 1,
                        earlier + 1
                    ),
                ));
            }
            None => {
                canon.insert(key, v);
            }
        }
    }
}

/// AB004: `range` directives whose intersection is empty.
fn check_ranges(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let mut last: HashMap<usize, Span> = HashMap::new();
    for site in &map.range_sites {
        last.insert(site.var, site.span);
    }
    for (&var, &span) in &last {
        if problem.arith_vars()[var].range.is_empty() {
            report.push(Diagnostic::new(
                Code::AB004,
                span,
                format!(
                    "range directives for `{}` contradict each other \
                     (their intersection is empty)",
                    problem.arith_vars()[var].name
                ),
            ));
        }
    }
}

/// AB012: `var` directives for variables no definition uses.
fn check_declared_vars(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let mut used = vec![false; problem.arith_vars().len()];
    for (_, def) in problem.defs() {
        for c in &def.constraints {
            for &v in c.variables() {
                used[v] = true;
            }
        }
    }
    for &(var, span) in &map.var_sites {
        if !used[var] {
            report.push(Diagnostic::new(
                Code::AB012,
                span,
                format!(
                    "arithmetic variable `{}` is declared but used in no definition",
                    problem.arith_vars()[var].name
                ),
            ));
        }
    }
}

/// AB006 (tautological clause), AB007 (empty clause / complementary
/// units), AB008 (variable beyond the declared header), AB009 (duplicate
/// clause).
fn check_clauses(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let span_of = |i: usize| map.clause_spans.get(i).copied().unwrap_or(Span::new(1, 1));
    let mut units: HashMap<usize, (bool, usize)> = HashMap::new();
    let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
    for (i, clause) in problem.cnf().clauses().iter().enumerate() {
        if clause.is_empty() {
            report.push(Diagnostic::new(
                Code::AB007,
                span_of(i),
                format!("clause {} is empty (the formula is unsatisfiable)", i + 1),
            ));
            continue;
        }
        if clause.is_tautology() {
            report.push(Diagnostic::new(
                Code::AB006,
                span_of(i),
                format!(
                    "clause {} is tautological (contains a literal and its negation)",
                    i + 1
                ),
            ));
        }
        if let Some(declared) = map.declared_vars {
            if let Some(lit) = clause.iter().find(|l| l.var().index() >= declared) {
                report.push(Diagnostic::new(
                    Code::AB008,
                    span_of(i),
                    format!(
                        "clause {} mentions variable {} beyond the declared {} variable(s)",
                        i + 1,
                        lit.var().index() + 1,
                        declared
                    ),
                ));
            }
        }
        if clause.len() == 1 {
            let lit = clause.lits()[0];
            match units.get(&lit.var().index()) {
                Some(&(polarity, j)) if polarity != lit.is_positive() => {
                    report.push(Diagnostic::new(
                        Code::AB007,
                        span_of(i),
                        format!(
                            "unit clause {} contradicts unit clause {} \
                             (the formula is unsatisfiable)",
                            i + 1,
                            j + 1
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    units.insert(lit.var().index(), (lit.is_positive(), i));
                }
            }
        }
        let mut key: Vec<usize> = clause.iter().map(|l| l.code()).collect();
        key.sort_unstable();
        key.dedup();
        match seen.get(&key) {
            Some(&j) => {
                report.push(Diagnostic::new(
                    Code::AB009,
                    span_of(i),
                    format!("clause {} duplicates clause {}", i + 1, j + 1),
                ));
            }
            None => {
                seen.insert(key, i);
            }
        }
    }
}

/// AB010/AB011: theory atoms statically decided by a root interval pass
/// over the *declared* box. These are warnings, not rewrites: declared
/// ranges only seed the nonlinear engine's search box, so a declared-box
/// certainty flags suspicious input without licensing simplification
/// (the equisatisfiable simplifier uses entire-box certainty instead).
fn check_static_atoms(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let first = first_def_sites(map);
    let declared: Vec<Interval> = problem.arith_vars().iter().map(|v| v.range).collect();
    for (var, def) in problem.defs() {
        // An empty declared range already carries its own AB004 error;
        // interval evaluation over it would flag every dependent atom.
        let touches_empty = def
            .constraints
            .iter()
            .any(|c| c.variables().iter().any(|&v| declared[v].is_empty()));
        if touches_empty || def.constraints.is_empty() {
            continue;
        }
        let v = var.index() as u32;
        let span = first.get(&v).copied().unwrap_or(Span::new(1, 1));
        if let Some(falsified) = def
            .constraints
            .iter()
            .find(|c| c.check_box(&declared) == IntervalVerdict::CertainlyFalse)
        {
            report.push(Diagnostic::new(
                Code::AB011,
                span,
                format!(
                    "constraint `{}` of variable {} is statically false throughout \
                     the declared box",
                    pretty(problem, falsified),
                    v + 1
                ),
            ));
        } else if def
            .constraints
            .iter()
            .all(|c| c.check_box(&declared) == IntervalVerdict::CertainlyTrue)
        {
            report.push(Diagnostic::new(
                Code::AB010,
                span,
                format!(
                    "definition of variable {} is statically true throughout \
                     the declared box",
                    v + 1
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(text: &str) -> Vec<Code> {
        check_source(text)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_input_is_clean() {
        let report =
            check_source("p cnf 2 2\n1 0\n-1 2 0\nc def int 1 i >= 0\nc def int 2 i < 7\n");
        assert!(report.is_clean(), "unexpected findings: {report:?}");
    }

    #[test]
    fn parse_error_is_ab001() {
        let report = check_source("p cnf 1 1\n1 0\nc def bool 1 x >= 0\n");
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, Code::AB001);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!((d.span.line, d.span.col), (3, 7));
    }

    #[test]
    fn duplicate_constraint_is_ab002() {
        let text = "p cnf 1 1\n1 0\nc def int 1 i >= 0\nc def int 1 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB002]);
        let report = check_source(text);
        assert_eq!(report.diagnostics[0].span.line, 4);
    }

    #[test]
    fn unclaused_def_is_ab003() {
        let text = "p cnf 2 1\n2 0\nc def int 1 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB003]);
    }

    #[test]
    fn contradictory_ranges_are_ab004() {
        let text = "p cnf 1 1\n1 0\nc var real x\nc range x 0 1\nc range x 2 3\n\
                    c def real 1 x >= 0\n";
        let report = check_source(text);
        // AB004 on the second range line; the atom check skips the
        // empty-ranged variable.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![Code::AB004]
        );
        assert_eq!(report.diagnostics[0].span.line, 5);
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn shadowed_def_is_ab005() {
        let text = "p cnf 2 1\n1 2 0\nc def int 1 i >= 0\nc def int 2 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB005]);
    }

    #[test]
    fn tautological_clause_is_ab006() {
        assert_eq!(codes("p cnf 1 1\n1 -1 0\n"), vec![Code::AB006]);
    }

    #[test]
    fn complementary_units_are_ab007() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let report = check_source(text);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![Code::AB007]
        );
        assert_eq!(report.diagnostics[0].span.line, 3);
    }

    #[test]
    fn undeclared_clause_variable_is_ab008() {
        assert_eq!(codes("p cnf 1 2\n1 0\n1 2 0\n"), vec![Code::AB008]);
    }

    #[test]
    fn duplicate_clause_is_ab009() {
        assert_eq!(codes("p cnf 2 2\n1 2 0\n2 1 0\n"), vec![Code::AB009]);
    }

    #[test]
    fn statically_true_atom_is_ab010() {
        // sin(x) ≤ 2 holds everywhere.
        let text = "p cnf 1 1\n1 0\nc def real 1 sin ( x ) <= 2\n";
        assert_eq!(codes(text), vec![Code::AB010]);
    }

    #[test]
    fn range_emptied_atom_is_ab011() {
        // Within x ∈ [0, 1], x ≥ 5 can never hold.
        let text = "p cnf 1 1\n1 0\nc def real 1 x >= 5\nc range x 0 1\n";
        assert_eq!(codes(text), vec![Code::AB011]);
    }

    #[test]
    fn unused_declared_var_is_ab012() {
        let text = "p cnf 1 1\n1 0\nc var real x\nc var real y\nc def real 1 x >= 0\n";
        assert_eq!(codes(text), vec![Code::AB012]);
        let report = check_source(text);
        assert!(report.diagnostics[0].message.contains("`y`"));
    }

    #[test]
    fn paper_example_is_clean() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/fig2.dimacs"
        ))
        .expect("fig2 example present");
        let report = check_source(&text);
        assert!(
            report.is_clean(),
            "fig2 must produce zero diagnostics: {report:?}"
        );
    }
}
