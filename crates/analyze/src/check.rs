//! The diagnostic passes (the compiler-style half of the analyzer).
//!
//! [`check_source`] parses an extended-DIMACS text and runs every pass,
//! anchoring findings on the [`SourceMap`] the parser collected; the
//! result is a [`Report`] renderable in human or JSON form. See the
//! crate docs for the code table.

use crate::dataflow::{dataflow, Dataflow, DataflowVerdict};
use crate::diag::{Code, Diagnostic, Report, StructureSummary};
use crate::structure::{cross_def_duplicates, prune_conjunction, subsumed_clauses};
use absolver_core::{parse_spanned, AbProblem, Partition, SourceMap, Span};
use absolver_logic::Lit;
use absolver_nonlinear::IntervalVerdict;
use absolver_num::Interval;
use std::collections::HashMap;

/// Parses `text` and runs all diagnostic passes. A parse failure yields a
/// single [`Code::AB001`] error carrying the parser's span.
pub fn check_source(text: &str) -> Report {
    match parse_spanned(text) {
        Ok((problem, map)) => check_problem(&problem, &map),
        Err(e) => {
            let mut report = Report::default();
            let span = e.span().unwrap_or(Span::new(1, 1));
            report.push(Diagnostic::new(Code::AB001, span, e.message()));
            report
        }
    }
}

/// Runs all diagnostic passes over an already-parsed problem and its
/// source map.
pub fn check_problem(problem: &AbProblem, map: &SourceMap) -> Report {
    let mut report = Report::default();
    check_defs(problem, map, &mut report);
    check_ranges(problem, map, &mut report);
    check_declared_vars(problem, map, &mut report);
    check_clauses(problem, map, &mut report);
    check_static_atoms(problem, map, &mut report);
    let subsumed = check_subsumption(problem, map, &mut report);
    let df = check_dataflow(problem, map, &mut report);
    report.structure = Some(structure_summary(problem, subsumed, &df));
    report.sort();
    report
}

/// Renders a constraint with the problem's variable names in place of the
/// internal `v<id>` placeholders (descending id so `v12` is not clobbered
/// by `v1`).
fn pretty(problem: &AbProblem, constraint: &absolver_nonlinear::NlConstraint) -> String {
    let mut s = constraint.to_string();
    for &id in constraint.variables().iter().rev() {
        s = s.replace(&format!("v{id}"), &problem.arith_vars()[id].name);
    }
    s
}

/// First `def` directive span per Boolean variable.
fn first_def_sites(map: &SourceMap) -> HashMap<u32, Span> {
    let mut first: HashMap<u32, Span> = HashMap::new();
    for site in &map.def_sites {
        first.entry(site.var).or_insert(site.span);
    }
    first
}

/// AB002 (duplicate constraint in one def), AB003 (def never in a
/// clause), AB005 (shadowed def).
fn check_defs(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let first = first_def_sites(map);
    let site_of = |var: u32, constraint: usize| {
        map.def_sites
            .iter()
            .find(|s| s.var == var && s.constraint == constraint)
            .map(|s| s.span)
            .unwrap_or(Span::new(1, 1))
    };

    // AB002: repeated constraint within one definition's conjunction.
    // Hash-consing makes this an id comparison — no O(n²) re-rendering.
    for (var, def) in problem.defs() {
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (j, c) in def.constraints.iter().enumerate() {
            if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(c.cid().raw()) {
                slot.insert(j);
            } else {
                let v = var.index() as u32;
                report.push(Diagnostic::new(
                    Code::AB002,
                    site_of(v, j),
                    format!(
                        "definition of variable {} repeats the constraint `{}`",
                        v + 1,
                        pretty(problem, c)
                    ),
                ));
            }
        }
    }

    // AB003: defined variable that no clause ever mentions — the solver
    // will pick its polarity freely, which is rarely what a generator
    // meant to emit.
    let mut occurs = vec![false; problem.cnf().num_vars()];
    for clause in problem.cnf().clauses() {
        for lit in clause.lits() {
            occurs[lit.var().index()] = true;
        }
    }
    for (var, _) in problem.defs() {
        if !occurs[var.index()] {
            let v = var.index() as u32;
            report.push(Diagnostic::new(
                Code::AB003,
                first.get(&v).copied().unwrap_or(Span::new(1, 1)),
                format!("variable {} is defined but occurs in no clause", v + 1),
            ));
        }
    }

    // AB005: two Boolean variables carrying identical conjunctions. The
    // later one shadows the earlier — almost always a generator slip.
    // Keyed on sorted interned constraint ids (structural equality is id
    // equality since the arena).
    let mut canon: HashMap<Vec<u32>, u32> = HashMap::new();
    for (var, def) in problem.defs() {
        let v = var.index() as u32;
        let mut key: Vec<u32> = def.constraints.iter().map(|c| c.cid().raw()).collect();
        key.sort_unstable();
        match canon.get(&key) {
            Some(&earlier) => {
                report.push(Diagnostic::new(
                    Code::AB005,
                    first.get(&v).copied().unwrap_or(Span::new(1, 1)),
                    format!(
                        "definition of variable {} is identical to the definition \
                         of variable {}",
                        v + 1,
                        earlier + 1
                    ),
                ));
            }
            None => {
                canon.insert(key, v);
            }
        }
    }
}

/// AB004: `range` directives whose intersection is empty.
fn check_ranges(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let mut last: HashMap<usize, Span> = HashMap::new();
    for site in &map.range_sites {
        last.insert(site.var, site.span);
    }
    for (&var, &span) in &last {
        if problem.arith_vars()[var].range.is_empty() {
            report.push(Diagnostic::new(
                Code::AB004,
                span,
                format!(
                    "range directives for `{}` contradict each other \
                     (their intersection is empty)",
                    problem.arith_vars()[var].name
                ),
            ));
        }
    }
}

/// AB012: `var` directives for variables no definition uses.
fn check_declared_vars(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let mut used = vec![false; problem.arith_vars().len()];
    for (_, def) in problem.defs() {
        for c in &def.constraints {
            for &v in c.variables() {
                used[v] = true;
            }
        }
    }
    for &(var, span) in &map.var_sites {
        if !used[var] {
            report.push(Diagnostic::new(
                Code::AB012,
                span,
                format!(
                    "arithmetic variable `{}` is declared but used in no definition",
                    problem.arith_vars()[var].name
                ),
            ));
        }
    }
}

/// AB006 (tautological clause), AB007 (empty clause / complementary
/// units), AB008 (variable beyond the declared header), AB009 (duplicate
/// clause).
fn check_clauses(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let span_of = |i: usize| map.clause_spans.get(i).copied().unwrap_or(Span::new(1, 1));
    let mut units: HashMap<usize, (bool, usize)> = HashMap::new();
    let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
    for (i, clause) in problem.cnf().clauses().iter().enumerate() {
        if clause.is_empty() {
            report.push(Diagnostic::new(
                Code::AB007,
                span_of(i),
                format!("clause {} is empty (the formula is unsatisfiable)", i + 1),
            ));
            continue;
        }
        if clause.is_tautology() {
            report.push(Diagnostic::new(
                Code::AB006,
                span_of(i),
                format!(
                    "clause {} is tautological (contains a literal and its negation)",
                    i + 1
                ),
            ));
        }
        if let Some(declared) = map.declared_vars {
            if let Some(lit) = clause.iter().find(|l| l.var().index() >= declared) {
                report.push(Diagnostic::new(
                    Code::AB008,
                    span_of(i),
                    format!(
                        "clause {} mentions variable {} beyond the declared {} variable(s)",
                        i + 1,
                        lit.var().index() + 1,
                        declared
                    ),
                ));
            }
        }
        if clause.len() == 1 {
            let lit = clause.lits()[0];
            match units.get(&lit.var().index()) {
                Some(&(polarity, j)) if polarity != lit.is_positive() => {
                    report.push(Diagnostic::new(
                        Code::AB007,
                        span_of(i),
                        format!(
                            "unit clause {} contradicts unit clause {} \
                             (the formula is unsatisfiable)",
                            i + 1,
                            j + 1
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    units.insert(lit.var().index(), (lit.is_positive(), i));
                }
            }
        }
        let mut key: Vec<usize> = clause.iter().map(|l| l.code()).collect();
        key.sort_unstable();
        key.dedup();
        match seen.get(&key) {
            Some(&j) => {
                report.push(Diagnostic::new(
                    Code::AB009,
                    span_of(i),
                    format!("clause {} duplicates clause {}", i + 1, j + 1),
                ));
            }
            None => {
                seen.insert(key, i);
            }
        }
    }
}

/// AB010/AB011: theory atoms statically decided by a root interval pass
/// over the *declared* box. These are warnings, not rewrites: declared
/// ranges only seed the nonlinear engine's search box, so a declared-box
/// certainty flags suspicious input without licensing simplification
/// (the equisatisfiable simplifier uses entire-box certainty instead).
fn check_static_atoms(problem: &AbProblem, map: &SourceMap, report: &mut Report) {
    let first = first_def_sites(map);
    let declared: Vec<Interval> = problem.arith_vars().iter().map(|v| v.range).collect();
    for (var, def) in problem.defs() {
        // An empty declared range already carries its own AB004 error;
        // interval evaluation over it would flag every dependent atom.
        let touches_empty = def
            .constraints
            .iter()
            .any(|c| c.variables().iter().any(|&v| declared[v].is_empty()));
        if touches_empty || def.constraints.is_empty() {
            continue;
        }
        let v = var.index() as u32;
        let span = first.get(&v).copied().unwrap_or(Span::new(1, 1));
        if let Some(falsified) = def
            .constraints
            .iter()
            .find(|c| c.check_box(&declared) == IntervalVerdict::CertainlyFalse)
        {
            report.push(Diagnostic::new(
                Code::AB011,
                span,
                format!(
                    "constraint `{}` of variable {} is statically false throughout \
                     the declared box",
                    pretty(problem, falsified),
                    v + 1
                ),
            ));
        } else if def
            .constraints
            .iter()
            .all(|c| c.check_box(&declared) == IntervalVerdict::CertainlyTrue)
        {
            report.push(Diagnostic::new(
                Code::AB010,
                span,
                format!(
                    "definition of variable {} is statically true throughout \
                     the declared box",
                    v + 1
                ),
            ));
        }
    }
}

/// AB013 (constraint repeated across definitions), AB014 (dominated
/// conjunct), AB015 (contradictory conjuncts), AB016 (subsumed clause).
/// Returns the number of constraints/clauses a subsumption-aware
/// preprocessor would drop, for the structure block.
fn check_subsumption(problem: &AbProblem, map: &SourceMap, report: &mut Report) -> usize {
    let site_of = |var: u32, constraint: usize| {
        map.def_sites
            .iter()
            .find(|s| s.var == var && s.constraint == constraint)
            .map(|s| s.span)
            .unwrap_or(Span::new(1, 1))
    };
    let mut subsumed = 0usize;

    // AB013: the same interned constraint attached to two different
    // variables. Not redundant (both atoms genuinely need it) but almost
    // always a generator slip; wholly identical definitions are AB005.
    for d in cross_def_duplicates(problem) {
        let constraint = problem
            .defs()
            .find(|(var, _)| var.index() as u32 == d.var)
            .map(|(_, def)| &def.constraints[d.constraint])
            .expect("cross-def duplicate indexes a real definition");
        report.push(Diagnostic::new(
            Code::AB013,
            site_of(d.var, d.constraint),
            format!(
                "definition of variable {} repeats the constraint `{}` already \
                 attached to variable {}",
                d.var + 1,
                pretty(problem, constraint),
                d.earlier_var + 1
            ),
        ));
    }

    // AB014/AB015: affine dominance inside one definition's conjunction.
    for (var, def) in problem.defs() {
        let v = var.index() as u32;
        let pruning = prune_conjunction(&def.constraints);
        subsumed += pruning.dropped();
        for &(dominated, dominating) in &pruning.dominated {
            report.push(Diagnostic::new(
                Code::AB014,
                site_of(v, dominated),
                format!(
                    "constraint `{}` of variable {} is redundant: `{}` dominates it",
                    pretty(problem, &def.constraints[dominated]),
                    v + 1,
                    pretty(problem, &def.constraints[dominating])
                ),
            ));
        }
        if let Some((a, b)) = pruning.contradiction {
            report.push(Diagnostic::new(
                Code::AB015,
                site_of(v, b),
                format!(
                    "constraints `{}` and `{}` of variable {} contradict each \
                     other (the atom can never hold)",
                    pretty(problem, &def.constraints[a]),
                    pretty(problem, &def.constraints[b]),
                    v + 1
                ),
            ));
        }
    }

    // AB016: clause subsumed by a strictly shorter clause. Equal clauses
    // are AB009's business; tautologies are skipped (AB006).
    let span_of = |i: usize| map.clause_spans.get(i).copied().unwrap_or(Span::new(1, 1));
    let entries: Vec<(usize, Vec<Lit>)> = problem
        .cnf()
        .clauses()
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty() && !c.is_tautology())
        .map(|(i, c)| {
            let mut lits = c.lits().to_vec();
            lits.sort_by_key(|l| l.code());
            lits.dedup();
            (i, lits)
        })
        .collect();
    for (sub, by) in subsumed_clauses(&entries) {
        subsumed += 1;
        report.push(Diagnostic::new(
            Code::AB016,
            span_of(sub),
            format!("clause {} is subsumed by clause {}", sub + 1, by + 1),
        ));
    }
    subsumed
}

/// AB017 (statically unsatisfiable by the interval-dataflow fixpoint or
/// by Boolean unit propagation), AB018 (derived hull misses a declared
/// range). Returns the dataflow result for the structure block.
fn check_dataflow(problem: &AbProblem, map: &SourceMap, report: &mut Report) -> Dataflow {
    let df = dataflow(problem, 16);
    match &df.verdict {
        DataflowVerdict::Converged => {
            // AB018: every model's value of a variable lies outside the
            // box the nonlinear engine will search. Declared ranges do
            // not bind the other engines, so this is suspicious input,
            // not a refutation.
            let mut range_span: HashMap<usize, Span> = HashMap::new();
            for site in &map.range_sites {
                range_span.insert(site.var, site.span);
            }
            for (v, var) in problem.arith_vars().iter().enumerate() {
                if var.range == Interval::ENTIRE || var.range.is_empty() {
                    continue; // nothing declared, or AB004's business
                }
                let derived = df.derived[v];
                if !derived.is_empty() && derived.intersect(var.range).is_empty() {
                    report.push(Diagnostic::new(
                        Code::AB018,
                        range_span.get(&v).copied().unwrap_or(Span::new(1, 1)),
                        format!(
                            "the declared range of `{}` misses every derivable \
                             value (derived {} vs declared {})",
                            var.name, derived, var.range
                        ),
                    ));
                }
            }
        }
        DataflowVerdict::BoolConflict => {
            // Complementary *unit* pairs and empty clauses already carry
            // an AB007; only deeper propagation conflicts are news.
            if !report.diagnostics.iter().any(|d| d.code == Code::AB007) {
                report.push(Diagnostic::new(
                    Code::AB017,
                    Span::new(1, 1),
                    "Boolean unit propagation derives a contradiction \
                     (the formula is unsatisfiable)",
                ));
            }
        }
        DataflowVerdict::EmptyDomain(ci) => {
            report.push(Diagnostic::new(
                Code::AB017,
                Span::new(1, 1),
                format!(
                    "constraints forced in every model empty an arithmetic \
                     domain while revising `{}`: the problem is statically \
                     unsatisfiable",
                    pretty(problem, &df.asserted[*ci])
                ),
            ));
        }
    }
    df
}

/// Builds the report's structure block: incidence-graph components,
/// subsumption count, and the dataflow-derived ranges.
fn structure_summary(problem: &AbProblem, subsumed: usize, df: &Dataflow) -> StructureSummary {
    let partition = Partition::of(problem);
    let derived_ranges = match df.verdict {
        DataflowVerdict::Converged => problem
            .arith_vars()
            .iter()
            .enumerate()
            .filter(|&(v, _)| df.derived[v] != Interval::ENTIRE && !df.derived[v].is_empty())
            .map(|(v, var)| (var.name.clone(), df.derived[v].to_string()))
            .collect(),
        _ => Vec::new(),
    };
    StructureSummary {
        components: partition.len(),
        component_sizes: partition.sizes(),
        subsumed,
        derived_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(text: &str) -> Vec<Code> {
        check_source(text)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_input_is_clean() {
        let report =
            check_source("p cnf 2 2\n1 0\n-1 2 0\nc def int 1 i >= 0\nc def int 2 i < 7\n");
        assert!(report.is_clean(), "unexpected findings: {report:?}");
    }

    #[test]
    fn parse_error_is_ab001() {
        let report = check_source("p cnf 1 1\n1 0\nc def bool 1 x >= 0\n");
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, Code::AB001);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!((d.span.line, d.span.col), (3, 7));
    }

    #[test]
    fn duplicate_constraint_is_ab002() {
        let text = "p cnf 1 1\n1 0\nc def int 1 i >= 0\nc def int 1 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB002]);
        let report = check_source(text);
        assert_eq!(report.diagnostics[0].span.line, 4);
    }

    #[test]
    fn unclaused_def_is_ab003() {
        let text = "p cnf 2 1\n2 0\nc def int 1 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB003]);
    }

    #[test]
    fn contradictory_ranges_are_ab004() {
        let text = "p cnf 1 1\n1 0\nc var real x\nc range x 0 1\nc range x 2 3\n\
                    c def real 1 x >= 0\n";
        let report = check_source(text);
        // AB004 on the second range line; the atom check skips the
        // empty-ranged variable.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![Code::AB004]
        );
        assert_eq!(report.diagnostics[0].span.line, 5);
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn shadowed_def_is_ab005() {
        let text = "p cnf 2 1\n1 2 0\nc def int 1 i >= 0\nc def int 2 i >= 0\n";
        assert_eq!(codes(text), vec![Code::AB005]);
    }

    #[test]
    fn tautological_clause_is_ab006() {
        assert_eq!(codes("p cnf 1 1\n1 -1 0\n"), vec![Code::AB006]);
    }

    #[test]
    fn complementary_units_are_ab007() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let report = check_source(text);
        assert_eq!(
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec![Code::AB007]
        );
        assert_eq!(report.diagnostics[0].span.line, 3);
    }

    #[test]
    fn undeclared_clause_variable_is_ab008() {
        // The unit `1` also subsumes the clause `1 2` (AB016).
        assert_eq!(
            codes("p cnf 1 2\n1 0\n1 2 0\n"),
            vec![Code::AB008, Code::AB016]
        );
    }

    #[test]
    fn duplicate_clause_is_ab009() {
        assert_eq!(codes("p cnf 2 2\n1 2 0\n2 1 0\n"), vec![Code::AB009]);
    }

    #[test]
    fn statically_true_atom_is_ab010() {
        // sin(x) ≤ 2 holds everywhere.
        let text = "p cnf 1 1\n1 0\nc def real 1 sin ( x ) <= 2\n";
        assert_eq!(codes(text), vec![Code::AB010]);
    }

    #[test]
    fn range_emptied_atom_is_ab011() {
        // Within x ∈ [0, 1], x ≥ 5 can never hold.
        // The forced atom also makes the dataflow hull `[5, ∞)` miss the
        // declared range entirely (AB018).
        let text = "p cnf 1 1\n1 0\nc def real 1 x >= 5\nc range x 0 1\n";
        assert_eq!(codes(text), vec![Code::AB011, Code::AB018]);
    }

    #[test]
    fn unused_declared_var_is_ab012() {
        let text = "p cnf 1 1\n1 0\nc var real x\nc var real y\nc def real 1 x >= 0\n";
        assert_eq!(codes(text), vec![Code::AB012]);
        let report = check_source(text);
        assert!(report.diagnostics[0].message.contains("`y`"));
    }

    #[test]
    fn paper_example_is_clean() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/fig2.dimacs"
        ))
        .expect("fig2 example present");
        let report = check_source(&text);
        assert!(
            report.is_clean(),
            "fig2 must produce zero diagnostics: {report:?}"
        );
    }
}
