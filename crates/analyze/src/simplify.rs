//! The equisatisfiable simplifier (the preprocessing half of the
//! analyzer).
//!
//! Four passes, all justified by the 3-valued reading of an AB-problem:
//!
//! 1. **Static atom elimination** — every definition constraint is
//!    checked over the *entire* box with rigorous interval arithmetic
//!    ([`NlConstraint::check_box`]). A constraint certainly true at every
//!    point of ℝⁿ is dropped from its conjunction; a definition with a
//!    certainly-false constraint forces its Boolean variable to `ff`, one
//!    whose constraints all vanish forces it to `tt`. The entire box is
//!    deliberate: declared `range` directives only seed the nonlinear
//!    engine's initial search box, they do not bind the linear engine, so
//!    only entire-box certainty is sound for rewriting.
//!
//! 1b. **Subsumption and dominance pruning** — inside each surviving
//!    conjunction, duplicate conjuncts (same interned id) and
//!    affine-dominated conjuncts (`a·x ≤ b` makes `a·x ≤ b'` redundant
//!    for `b ≤ b'`) are dropped — both equivalence-preserving on the
//!    conjunction — and a contradictory affine pair (`row ≥ l ∧ row ≤ u`,
//!    `l > u`) forces the defined variable to `ff` exactly like a
//!    certainly-false conjunct. Clauses subsumed by a strictly shorter
//!    clause are dropped from the CNF (the classic subsumption rule,
//!    model-set preserving).
//! 2. **Unit propagation and redundant-clause removal** — unit clauses
//!    propagate to a fixpoint; satisfied clauses, tautologies, and
//!    duplicate clauses are dropped; falsified literals are stripped. An
//!    empty clause proves the problem unsatisfiable outright. Units on
//!    *defined* variables are re-emitted (the solver must still discharge
//!    their theory obligation); units on plain Boolean variables are
//!    eliminated and recorded in the [`Reconstruction`].
//! 3. **Pure-literal elimination** — restricted to *undefined* variables:
//!    flipping a defined variable is observable by the theory, so the
//!    classic pure-literal argument only applies to the pure Boolean
//!    skeleton.
//! 4. **Range tightening** — the constraints forced `tt` by the unit
//!    fixpoint (and single-constraint negations of forced-`ff` atoms)
//!    hold in every model, so an HC4 propagation from the entire box
//!    yields a sound hull; intersecting it into the declared ranges
//!    shrinks the nonlinear engine's initial boxes without excluding any
//!    model. An empty hull is a rigorous unsatisfiability proof.
//!
//! Variable numbering is never changed, so model reconstruction is just
//! re-asserting the recorded polarities ([`Reconstruction::lift`]).

use crate::structure::{prune_conjunction, subsumed_clauses};
use absolver_core::preprocess::{
    PreprocessSummary, Preprocessed, ProblemPreprocessor, Reconstruction,
};
use absolver_core::AbProblem;
use absolver_logic::{Lit, Var};
use absolver_nonlinear::hc4;
use absolver_nonlinear::hc4::Contraction;
use absolver_nonlinear::{IntervalVerdict, NlConstraint};
use absolver_num::Interval;
use std::collections::{BTreeMap, HashSet};

/// The analyzer's preprocessing pass. Attach to an orchestrator with
/// [`absolver_core::Orchestrator::with_preprocessor`]:
///
/// ```
/// use absolver_analyze::Simplifier;
/// use absolver_core::{AbProblem, Orchestrator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem: AbProblem =
///     "p cnf 2 2\n1 0\n1 2 0\nc def real 1 x ^ 2 >= 0\n".parse()?;
/// let mut solver = Orchestrator::with_defaults()
///     .with_preprocessor(Box::new(Simplifier::new()));
/// let outcome = solver.solve(&problem)?;
/// assert!(outcome.model().unwrap().satisfies(&problem, 1e-9));
/// assert_eq!(solver.stats().pre_atoms_eliminated, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simplifier {
    /// Fixpoint sweep bound of the HC4 range-tightening pass.
    pub max_hc4_rounds: usize,
}

impl Default for Simplifier {
    fn default() -> Simplifier {
        Simplifier { max_hc4_rounds: 16 }
    }
}

impl Simplifier {
    /// Creates a simplifier with default budgets.
    pub fn new() -> Simplifier {
        Simplifier::default()
    }

    /// Runs all passes over `problem`.
    pub fn simplify(&self, problem: &AbProblem) -> Preprocessed {
        let num_bool = problem.cnf().num_vars();
        let num_arith = problem.arith_vars().len();
        let mut summary = PreprocessSummary::default();

        // Pass 1: static atom elimination over the entire box.
        let entire = vec![Interval::ENTIRE; num_arith];
        let mut defs: BTreeMap<u32, Vec<NlConstraint>> = BTreeMap::new();
        let mut static_units: Vec<Lit> = Vec::new();
        for (var, def) in problem.defs() {
            if def
                .constraints
                .iter()
                .any(|c| c.check_box(&entire) == IntervalVerdict::CertainlyFalse)
            {
                // Some conjunct fails at every point: the atom can never
                // be asserted, and its negation holds at every point.
                summary.atoms_eliminated += def.constraints.len() as u64;
                static_units.push(var.negative());
                continue;
            }
            let kept: Vec<NlConstraint> = def
                .constraints
                .iter()
                .filter(|c| c.check_box(&entire) != IntervalVerdict::CertainlyTrue)
                .cloned()
                .collect();
            summary.atoms_eliminated += (def.constraints.len() - kept.len()) as u64;
            if kept.is_empty() {
                // Every conjunct holds at every point: the atom is `tt`.
                static_units.push(var.positive());
            } else {
                defs.insert(var.index() as u32, kept);
            }
        }

        // Pass 1b: subsumption/dominance pruning inside each surviving
        // conjunction. Dropping a duplicate or dominated conjunct leaves
        // the conjunction equivalent; a contradictory affine pair means
        // the atom can never hold, which forces its variable to `ff`
        // exactly like a certainly-false conjunct.
        let mut contradicted: Vec<u32> = Vec::new();
        for (&v, constraints) in defs.iter_mut() {
            let pruning = prune_conjunction(constraints);
            if pruning.contradiction.is_some() {
                contradicted.push(v);
                continue;
            }
            if pruning.dropped() > 0 {
                summary.constraints_subsumed += pruning.dropped() as u64;
                let kept: Vec<NlConstraint> = pruning
                    .kept
                    .iter()
                    .map(|&i| constraints[i].clone())
                    .collect();
                *constraints = kept;
            }
        }
        for v in contradicted {
            let removed = defs.remove(&v).expect("contradicted def exists");
            summary.atoms_eliminated += removed.len() as u64;
            static_units.push(Var::new(v).negative());
        }

        // Pass 2/3: unit propagation, clause cleanup, pure literals.
        let mut fixed: Vec<Option<bool>> = vec![None; num_bool];
        let mut clauses: Vec<Option<Vec<Lit>>> = Vec::with_capacity(problem.cnf().len());
        let mut seen: HashSet<Vec<Lit>> = HashSet::new();
        for clause in problem.cnf().clauses() {
            let mut lits: Vec<Lit> = clause.lits().to_vec();
            lits.sort_by_key(|l| l.code());
            lits.dedup();
            let tautology = lits
                .windows(2)
                .any(|w| w[0].var() == w[1].var() && w[0] != w[1]);
            // Boolean models are total (`BooleanSolver::next_model`), so a
            // dropped tautology stays satisfied after lifting regardless
            // of how its variables end up assigned.
            if tautology || !seen.insert(lits.clone()) {
                clauses.push(None);
            } else {
                clauses.push(Some(lits));
            }
        }
        // Clause subsumption: a clause containing every literal of a
        // strictly shorter clause is implied by it, so dropping it
        // preserves the model set exactly.
        let entries: Vec<(usize, Vec<Lit>)> = clauses
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|lits| (i, lits.clone())))
            .collect();
        for (sub, _) in subsumed_clauses(&entries) {
            clauses[sub] = None;
            summary.constraints_subsumed += 1;
        }
        let fix = |fixed: &mut Vec<Option<bool>>, lit: Lit| -> Result<bool, ()> {
            let value = lit.is_positive();
            match fixed[lit.var().index()] {
                Some(v) if v == value => Ok(false),
                Some(_) => Err(()), // complementary units: unsatisfiable
                None => {
                    fixed[lit.var().index()] = Some(value);
                    Ok(true)
                }
            }
        };
        for &lit in &static_units {
            if fix(&mut fixed, lit).is_err() {
                return Preprocessed::TriviallyUnsat { summary };
            }
        }
        loop {
            let mut changed = false;
            // Apply the fixed values to every live clause.
            for slot in clauses.iter_mut() {
                let Some(lits) = slot else { continue };
                if lits
                    .iter()
                    .any(|l| fixed[l.var().index()] == Some(l.is_positive()))
                {
                    *slot = None; // satisfied in every remaining model
                    changed = true;
                    continue;
                }
                let before = lits.len();
                lits.retain(|l| fixed[l.var().index()].is_none());
                if lits.is_empty() {
                    return Preprocessed::TriviallyUnsat { summary };
                }
                changed |= lits.len() != before;
            }
            // Unit clauses fix their literal.
            for slot in clauses.iter_mut() {
                let Some(lits) = slot else { continue };
                if lits.len() == 1 {
                    match fix(&mut fixed, lits[0]) {
                        Ok(c) => changed |= c,
                        Err(()) => return Preprocessed::TriviallyUnsat { summary },
                    }
                }
            }
            // Pure literals, undefined variables only: the theory observes
            // a defined variable's polarity, so flipping is only free for
            // the pure Boolean skeleton.
            let mut polarity: Vec<(bool, bool)> = vec![(false, false); num_bool];
            for lits in clauses.iter().flatten() {
                for l in lits {
                    let p = &mut polarity[l.var().index()];
                    if l.is_positive() {
                        p.0 = true;
                    } else {
                        p.1 = true;
                    }
                }
            }
            for (v, &(pos, neg)) in polarity.iter().enumerate() {
                if fixed[v].is_some() || defs.contains_key(&(v as u32)) || pos == neg {
                    continue;
                }
                // Occurs in exactly one polarity: fix it that way.
                fixed[v] = Some(pos);
                changed = true;
            }
            if !changed {
                break;
            }
        }

        // Fixed variables without a surviving definition leave the problem
        // entirely; reconstruction re-asserts them. Fixed *defined*
        // variables keep a unit clause so the control loop still
        // discharges their theory obligation.
        let mut forced: Vec<(Var, bool)> = Vec::new();
        let mut kept_units: Vec<Lit> = Vec::new();
        for (v, value) in fixed.iter().enumerate() {
            let Some(value) = *value else { continue };
            let var = Var::new(v as u32);
            if defs.contains_key(&(v as u32)) {
                kept_units.push(if value {
                    var.positive()
                } else {
                    var.negative()
                });
            } else {
                forced.push((var, value));
            }
        }
        summary.vars_eliminated = forced.len() as u64;

        // Pass 4: range tightening from the unit-forced constraints.
        let mut asserted: Vec<NlConstraint> = Vec::new();
        for (&v, constraints) in &defs {
            match fixed[v as usize] {
                Some(true) => asserted.extend(constraints.iter().cloned()),
                Some(false) if constraints.len() == 1 => {
                    // ¬(single constraint) is assertable only when the
                    // negation is again a single constraint (`=` splits
                    // into a disjunction, which HC4 cannot assert).
                    let negated = constraints[0].negate();
                    if let [only] = negated.as_slice() {
                        asserted.push(only.clone());
                    }
                }
                _ => {}
            }
        }
        let mut ranges: Vec<Interval> = problem.arith_vars().iter().map(|v| v.range).collect();
        if !asserted.is_empty() {
            let mut hull = vec![Interval::ENTIRE; num_arith];
            if hc4::propagate(&asserted, &mut hull, self.max_hc4_rounds) == Contraction::Empty {
                // No real point satisfies the forced conjunction, and the
                // hull started from the entire box: rigorous refutation.
                return Preprocessed::TriviallyUnsat { summary };
            }
            for (range, h) in ranges.iter_mut().zip(&hull) {
                let tightened = range.intersect(*h);
                // An empty intersection would only say "no model inside
                // the declared box", which the declared-box semantics do
                // not let us act on; keep the declared range then.
                if !tightened.is_empty() && tightened != *range {
                    *range = tightened;
                    summary.ranges_tightened += 1;
                }
            }
        }

        // Rebuild with identical numbering.
        let mut b = AbProblem::builder();
        for (v, range) in problem.arith_vars().iter().zip(&ranges) {
            let id = b.arith_var(&v.name, v.kind);
            b.set_range(id, *range);
        }
        while b.num_bool_vars() < num_bool {
            b.bool_var();
        }
        for (&v, constraints) in &defs {
            for c in constraints {
                b.define(Var::new(v), c.clone());
            }
        }
        let mut emitted = 0usize;
        for lits in clauses.into_iter().flatten() {
            emitted += 1;
            b.add_clause(lits);
        }
        for &unit in &kept_units {
            emitted += 1;
            b.add_clause([unit]);
        }
        summary.clauses_eliminated = (problem.cnf().len().saturating_sub(emitted)) as u64;
        Preprocessed::Shrunk {
            problem: b.build(),
            reconstruction: Reconstruction { forced },
            summary,
        }
    }
}

impl ProblemPreprocessor for Simplifier {
    fn name(&self) -> &str {
        "analyze-simplify"
    }

    fn preprocess(&self, problem: &AbProblem) -> Preprocessed {
        self.simplify(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_core::{Orchestrator, VarKind};
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;
    use absolver_num::Rational;

    fn shrunk(p: Preprocessed) -> (AbProblem, Reconstruction, PreprocessSummary) {
        match p {
            Preprocessed::Shrunk {
                problem,
                reconstruction,
                summary,
            } => (problem, reconstruction, summary),
            Preprocessed::TriviallyUnsat { .. } => panic!("unexpected trivial unsat"),
        }
    }

    #[test]
    fn statically_true_atom_is_eliminated() {
        // x² ≥ 0 holds at every real point.
        let problem: AbProblem = "p cnf 2 2\n1 0\n1 2 0\nc def real 1 x ^ 2 >= 0\n"
            .parse()
            .unwrap();
        let (small, rec, summary) = shrunk(Simplifier::new().simplify(&problem));
        assert_eq!(summary.atoms_eliminated, 1);
        assert_eq!(small.num_defs(), 0);
        // Variable 1 is forced true, both clauses die, variable 1 leaves.
        assert!(rec.forced.contains(&(Var::new(0), true)));
        assert_eq!(small.cnf().len(), 0);
    }

    #[test]
    fn statically_false_atom_forces_negation() {
        // x² < 0 fails at every real point, and the clause demands it.
        let problem: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x ^ 2 < 0\n".parse().unwrap();
        match Simplifier::new().simplify(&problem) {
            Preprocessed::TriviallyUnsat { summary } => {
                assert_eq!(summary.atoms_eliminated, 1);
            }
            other => panic!("expected trivial unsat, got {other:?}"),
        }
    }

    #[test]
    fn unit_propagation_eliminates_pure_boolean_structure() {
        // (1) (−1 ∨ 2) (2 ∨ 3): the unit fixes 1, propagation fixes 2,
        // and the pure-literal pass picks up 2 and 3 (positive-only).
        let problem: AbProblem = "p cnf 3 3\n1 0\n-1 2 0\n2 3 0\n".parse().unwrap();
        let (small, rec, summary) = shrunk(Simplifier::new().simplify(&problem));
        assert_eq!(small.cnf().len(), 0);
        assert_eq!(summary.clauses_eliminated, 3);
        assert_eq!(summary.vars_eliminated, 3);
        let mut model = absolver_core::AbModel {
            boolean: absolver_logic::Assignment::new(3),
            arith: absolver_core::ArithModel::Numeric(vec![]),
        };
        rec.lift(&mut model);
        assert!(model.satisfies(&problem, 1e-9));
    }

    #[test]
    fn complementary_units_are_trivially_unsat() {
        let problem: AbProblem = "p cnf 1 2\n1 0\n-1 0\n".parse().unwrap();
        assert!(matches!(
            Simplifier::new().simplify(&problem),
            Preprocessed::TriviallyUnsat { .. }
        ));
    }

    #[test]
    fn tautologies_and_duplicates_are_dropped() {
        let problem: AbProblem = "p cnf 2 3\n1 -1 0\n1 2 0\n2 1 0\n".parse().unwrap();
        let (small, _, summary) = shrunk(Simplifier::new().simplify(&problem));
        // The tautology and the duplicate go; the survivor is then pure.
        assert_eq!(small.cnf().len(), 0);
        assert!(summary.clauses_eliminated >= 2);
    }

    #[test]
    fn defined_units_keep_their_theory_obligation() {
        // Unit on a defined variable: the variable must stay in the
        // problem (as a unit) so the control loop checks x ≥ 2.
        let problem: AbProblem = "p cnf 2 2\n1 0\n1 2 0\nc def real 1 x >= 2\n"
            .parse()
            .unwrap();
        let (small, rec, _) = shrunk(Simplifier::new().simplify(&problem));
        assert_eq!(small.num_defs(), 1);
        assert_eq!(small.cnf().len(), 1);
        assert_eq!(small.cnf().clauses()[0].lits(), &[Var::new(0).positive()]);
        // Variable 1 is not in the reconstruction: the solver assigns it.
        assert!(rec.forced.iter().all(|&(v, _)| v != Var::new(0)));
    }

    #[test]
    fn ranges_tighten_from_forced_constraints() {
        let problem: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x >= 2\nc range x -10 10\n"
            .parse()
            .unwrap();
        let (small, _, summary) = shrunk(Simplifier::new().simplify(&problem));
        assert_eq!(summary.ranges_tightened, 1);
        let x = small.arith_var("x").unwrap();
        let range = small.arith_vars()[x].range;
        assert!(range.lo() >= 2.0 && range.hi() <= 10.0, "got {range:?}");
    }

    #[test]
    fn forced_negation_tightens_too() {
        // ¬(x ≤ 0) ⇒ x > 0: the negation is a single constraint and may
        // be asserted for tightening.
        let problem: AbProblem = "p cnf 1 1\n-1 0\nc def real 1 x <= 0\nc range x -10 10\n"
            .parse()
            .unwrap();
        let (small, _, summary) = shrunk(Simplifier::new().simplify(&problem));
        assert_eq!(summary.ranges_tightened, 1);
        let x = small.arith_var("x").unwrap();
        assert!(small.arith_vars()[x].range.lo() >= 0.0);
    }

    #[test]
    fn hc4_refutation_is_trivially_unsat() {
        // x ≥ 1 ∧ x ≤ 0 forced by two units: the hull empties.
        let problem: AbProblem = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 1\nc def real 2 x <= 0\n"
            .parse()
            .unwrap();
        assert!(matches!(
            Simplifier::new().simplify(&problem),
            Preprocessed::TriviallyUnsat { .. }
        ));
    }

    #[test]
    fn solver_verdicts_and_lifted_models_agree() {
        // End-to-end through the orchestrator on the paper's example.
        let text = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c range a -10 10
c range x -10 10
c range y -10 10
";
        let problem: AbProblem = text.parse().unwrap();
        let mut plain = Orchestrator::with_defaults();
        let baseline = plain.solve(&problem).unwrap();
        let mut pre = Orchestrator::with_defaults().with_preprocessor(Box::new(Simplifier::new()));
        let outcome = pre.solve(&problem).unwrap();
        assert_eq!(baseline.is_sat(), outcome.is_sat());
        let model = outcome.model().expect("paper example is satisfiable");
        assert!(model.satisfies(&problem, 1e-6));
    }

    #[test]
    fn builder_problems_survive_simplification() {
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Int);
        let lo = b.atom(Expr::var(x), CmpOp::Ge, Rational::from_int(-3));
        b.require(lo.positive());
        let hi = b.atom(Expr::var(x), CmpOp::Le, Rational::from_int(3));
        b.require(hi.positive());
        let mid = b.atom(Expr::var(x), CmpOp::Eq, Rational::from_int(1));
        let free = b.bool_var();
        b.add_clause([mid.positive(), free.positive()]);
        let problem = b.build();

        let mut pre = Orchestrator::with_defaults().with_preprocessor(Box::new(Simplifier::new()));
        let outcome = pre.solve(&problem).unwrap();
        assert!(outcome.is_sat());
        assert!(outcome.model().unwrap().satisfies(&problem, 1e-9));
    }
}
