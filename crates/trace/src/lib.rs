//! Structured tracing for the ABsolver control loop.
//!
//! The orchestrator, the theory layer, and the parallel shards emit
//! [`TraceEvent`]s through a [`TraceSink`] trait object. Three sinks are
//! built in:
//!
//! * [`NullSink`] — the default; reports itself disabled so emitters can
//!   skip building events entirely,
//! * [`CollectingSink`] — buffers events in memory for tests and
//!   differential comparisons,
//! * [`FileSink`] — appends one JSON object per event (JSONL) to a file.
//!
//! The crate is dependency-free: JSON is hand-rolled through
//! [`JsonObject`], which the stats layer reuses for `--stats json`.
//!
//! Event vocabulary used by the solver (the `kind` field):
//!
//! | kind             | emitted by          | payload                        |
//! |------------------|---------------------|--------------------------------|
//! | `preprocess.start` | orchestrator      | `pass`, `num_vars`, `num_clauses`, `num_defs` |
//! | `preprocess.end` | orchestrator        | `result` (`shrunk`/`trivially-unsat`), `vars_eliminated`, `clauses_eliminated`, `atoms_eliminated`, `ranges_tightened`, `duration_us` |
//! | `solve.start`    | orchestrator        | `vars`, `clauses`, `defs`      |
//! | `solve.end`      | orchestrator        | `verdict`, `duration_us`       |
//! | `boolean.model`  | orchestrator        | `iteration`, `duration_us`     |
//! | `theory.check`   | orchestrator        | `iteration`, `verdict`, `items`, `duration_us` |
//! | `phase.linear`   | theory layer        | `start` (`warm`/`cold`), `reused_rows`, `pushed_rows`, `duration_us` |
//! | `phase.nonlinear`| theory layer        | `duration_us`                  |
//! | `contract.hc4`   | theory layer        | `count` (HC4 revisions this check) |
//! | `contract.bc3`   | theory layer        | `count` (BC3 bound shavings this check) |
//! | `contract.newton`| theory layer        | `count` (interval-Newton steps this check) |
//! | `contract.cache_hit` | theory layer    | `count` (contraction-cache hits this check) |
//! | `cache.hit`      | orchestrator        | `literals`                     |
//! | `cache.miss`     | orchestrator        | `literals`                     |
//! | `conflict`       | orchestrator        | `iteration`, `literals`        |
//! | `shard.start`    | parallel driver     | `shard`, `strategy`            |
//! | `shard.end`      | parallel driver     | `shard`, `verdict`, `duration_us` |
//! | `cube.start`     | parallel driver     | `shard`, `cube`                |
//! | `cube.end`       | parallel driver     | `shard`, `cube`, `verdict`, `duration_us` |
//! | `lemma.import`   | orchestrator        | `latency_us`, `literals`       |
//! | `request.received` | service           | `id`, `priority`, `bytes`      |
//! | `request.done`   | service             | `id`, `verdict`, `cache`, `wait_us`, `duration_us` |
//! | `request.failed` | service             | `id`, `code`                   |
//! | `queue.enqueue`  | service             | `id`, `depth`                  |
//! | `queue.reject`   | service             | `id`, `retry_after_ms`         |
//! | `queue.expired`  | service             | `id`, `wait_us`                |
//! | `cache.problem_hit` / `cache.problem_miss` | service | `id`          |
//! | `cache.session_hit` / `cache.session_miss` | service | `id`          |
//! | `cache.lemma_seed` | service            | `id`, `literals`              |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dotted event kind, e.g. `theory.check` (see the crate docs for the
    /// vocabulary the solver uses).
    pub kind: String,
    /// Shard index, for events emitted inside a parallel run.
    pub shard: Option<usize>,
    /// Cube index, for events emitted inside a cube-and-conquer run.
    pub cube: Option<usize>,
    /// Wall-clock duration in microseconds, for span-shaped events.
    pub duration_us: Option<u64>,
    /// Free-form `(key, value)` payload, serialised as flat JSON fields.
    pub data: Vec<(String, String)>,
}

impl TraceEvent {
    /// Creates an event of the given kind with an empty payload.
    pub fn new(kind: impl Into<String>) -> TraceEvent {
        TraceEvent {
            kind: kind.into(),
            shard: None,
            cube: None,
            duration_us: None,
            data: Vec::new(),
        }
    }

    /// Sets the shard index.
    pub fn shard(mut self, shard: usize) -> TraceEvent {
        self.shard = Some(shard);
        self
    }

    /// Sets the cube index.
    pub fn cube(mut self, cube: usize) -> TraceEvent {
        self.cube = Some(cube);
        self
    }

    /// Sets the span duration (microseconds).
    pub fn duration_us(mut self, us: u64) -> TraceEvent {
        self.duration_us = Some(us);
        self
    }

    /// Sets the span duration from a [`std::time::Duration`].
    pub fn duration(self, d: std::time::Duration) -> TraceEvent {
        self.duration_us(saturating_micros(d))
    }

    /// Appends a string payload field.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> TraceEvent {
        self.data.push((key.into(), value.into()));
        self
    }

    /// Appends an integer payload field.
    pub fn field_u64(self, key: impl Into<String>, value: u64) -> TraceEvent {
        self.field(key, value.to_string())
    }

    /// Looks up a payload field by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.data
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serialises the event as a single-line JSON object. String payload
    /// values that already look like JSON scalars (numbers, booleans) are
    /// emitted unquoted so `duration_us` and counters stay numeric.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("kind", &self.kind);
        if let Some(shard) = self.shard {
            obj.field_u64("shard", shard as u64);
        }
        if let Some(cube) = self.cube {
            obj.field_u64("cube", cube as u64);
        }
        if let Some(us) = self.duration_us {
            obj.field_u64("duration_us", us);
        }
        for (k, v) in &self.data {
            if is_json_scalar(v) {
                obj.field_raw(k, v);
            } else {
                obj.field_str(k, v);
            }
        }
        obj.finish()
    }
}

/// Converts a [`std::time::Duration`] to whole microseconds, saturating at
/// `u64::MAX` instead of silently truncating the 128-bit count. Long-running
/// services accumulate durations far past the point where an `as u64` cast
/// of `as_micros()` would wrap.
pub fn saturating_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Returns `true` when `s` can be embedded in JSON without quoting: an
/// integer, a decimal number, or a boolean literal.
fn is_json_scalar(s: &str) -> bool {
    if s == "true" || s == "false" {
        return true;
    }
    let rest = s.strip_prefix('-').unwrap_or(s);
    !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_digit() || c == '.')
        && rest.chars().filter(|&c| c == '.').count() <= 1
        && !rest.starts_with('.')
        && !rest.ends_with('.')
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receiver of trace events. Implementations must be thread-safe — the
/// parallel shards emit concurrently through one shared sink.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &TraceEvent);

    /// Whether emitting is worthwhile. Emitters consult this before
    /// building event payloads, so a disabled sink costs one virtual call
    /// per site and nothing else.
    fn enabled(&self) -> bool {
        true
    }
}

impl fmt::Debug for dyn TraceSink + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceSink(enabled={})", self.enabled())
    }
}

/// The default sink: discards everything and reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink for tests and differential span comparisons.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// A snapshot of all events collected so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("collecting sink poisoned")
            .clone()
    }

    /// The kinds of all collected events, in emission order.
    pub fn kinds(&self) -> Vec<String> {
        self.events().into_iter().map(|e| e.kind).collect()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collecting sink poisoned").len()
    }

    /// Returns `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all collected events.
    pub fn clear(&self) {
        self.events
            .lock()
            .expect("collecting sink poisoned")
            .clear();
    }
}

impl TraceSink for CollectingSink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("collecting sink poisoned")
            .push(event.clone());
    }
}

/// A sink that appends one JSON object per event to a file (JSONL).
/// Writes are buffered; the buffer is flushed when the sink is dropped.
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileSink> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Flushes buffered events to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("file sink poisoned").flush()
    }
}

impl TraceSink for FileSink {
    fn emit(&self, event: &TraceEvent) {
        let mut writer = self.writer.lock().expect("file sink poisoned");
        // A full disk mid-trace must not abort the solve; the trace is
        // best-effort diagnostics.
        let _ = writeln!(writer, "{}", event.to_json());
    }
}

/// An adapter that stamps every event with a shard index before
/// forwarding to the shared inner sink. Parallel shards wrap the caller's
/// sink in one of these so per-shard spans stay attributable.
pub struct ShardSink {
    inner: Arc<dyn TraceSink>,
    shard: usize,
}

impl ShardSink {
    /// Wraps `inner`, stamping events with `shard`.
    pub fn new(inner: Arc<dyn TraceSink>, shard: usize) -> ShardSink {
        ShardSink { inner, shard }
    }
}

impl TraceSink for ShardSink {
    fn emit(&self, event: &TraceEvent) {
        if event.shard.is_some() {
            self.inner.emit(event);
        } else {
            let mut stamped = event.clone();
            stamped.shard = Some(self.shard);
            self.inner.emit(&stamped);
        }
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON
// ---------------------------------------------------------------------------

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for a JSON object, used for both trace lines and
/// the machine-readable stats reports (`--stats json`, `BENCH_*.json`).
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape_json(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped and quoted).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape_json(value));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialised JSON value verbatim (nested objects/arrays).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut JsonObject {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(&TraceEvent::new("solve.start")); // must not panic
    }

    #[test]
    fn collecting_sink_preserves_order() {
        let sink = CollectingSink::new();
        sink.emit(&TraceEvent::new("a"));
        sink.emit(&TraceEvent::new("b").field_u64("n", 3));
        assert_eq!(sink.kinds(), vec!["a", "b"]);
        assert_eq!(sink.events()[1].get("n"), Some("3"));
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn shard_sink_stamps_missing_shard_only() {
        let inner = Arc::new(CollectingSink::new());
        let shard: ShardSink = ShardSink::new(inner.clone(), 7);
        shard.emit(&TraceEvent::new("x"));
        shard.emit(&TraceEvent::new("y").shard(2));
        let events = inner.events();
        assert_eq!(events[0].shard, Some(7));
        assert_eq!(events[1].shard, Some(2));
    }

    #[test]
    fn event_json_is_wellformed() {
        let ev = TraceEvent::new("theory.check")
            .shard(1)
            .duration_us(42)
            .field("verdict", "unsat")
            .field_u64("items", 5)
            .field("note", "a \"quoted\"\nline");
        let json = ev.to_json();
        assert_eq!(
            json,
            "{\"kind\":\"theory.check\",\"shard\":1,\"duration_us\":42,\
             \"verdict\":\"unsat\",\"items\":5,\"note\":\"a \\\"quoted\\\"\\nline\"}"
        );
    }

    #[test]
    fn saturating_micros_clamps() {
        use std::time::Duration;
        assert_eq!(saturating_micros(Duration::from_micros(42)), 42);
        assert_eq!(saturating_micros(Duration::MAX), u64::MAX);
    }

    #[test]
    fn scalar_detection() {
        assert!(is_json_scalar("0"));
        assert!(is_json_scalar("-12"));
        assert!(is_json_scalar("3.25"));
        assert!(is_json_scalar("true"));
        assert!(!is_json_scalar("1.2.3"));
        assert!(!is_json_scalar(".5"));
        assert!(!is_json_scalar("5."));
        assert!(!is_json_scalar(""));
        assert!(!is_json_scalar("sat"));
    }

    #[test]
    fn json_object_builder() {
        let mut obj = JsonObject::new();
        obj.field_str("verdict", "sat")
            .field_u64("iterations", 9)
            .field_bool("timed_out", false)
            .field_f64("ratio", 0.5)
            .field_raw("phase", "{\"linear_us\":1}");
        assert_eq!(
            obj.finish(),
            "{\"verdict\":\"sat\",\"iterations\":9,\"timed_out\":false,\
             \"ratio\":0.5,\"phase\":{\"linear_us\":1}}"
        );
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path =
            std::env::temp_dir().join(format!("absolver-trace-test-{}.jsonl", std::process::id()));
        {
            let sink = FileSink::create(&path).unwrap();
            sink.emit(&TraceEvent::new("solve.start").field_u64("vars", 4));
            sink.emit(&TraceEvent::new("solve.end").duration_us(10));
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"solve.start\""));
        assert!(lines[1].contains("\"duration_us\":10"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink: Arc<dyn TraceSink> = Arc::new(CollectingSink::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let sink = Arc::new(ShardSink::new(sink.clone(), i));
                scope.spawn(move || {
                    sink.emit(&TraceEvent::new("shard.start"));
                });
            }
        });
    }
}
