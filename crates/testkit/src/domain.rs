//! Generators for ABsolver domain values: rationals, literals, DIMACS
//! clauses, CNFs, linear constraints, and nonlinear expression trees.
//!
//! These compose the primitives in [`crate::gen`] with the workspace's
//! own types. Note for crate authors: a crate's *unit* tests (inside
//! `#[cfg(test)]` modules) compile that crate a second time, so types
//! produced here would not unify with the crate-under-test's own —
//! use these generators from integration tests (`tests/` directories)
//! or from downstream crates, and build same-crate values from
//! primitive generators instead.

use crate::gen::{self, Gen};
use absolver_linear::{CmpOp, LinExpr, LinearConstraint};
use absolver_logic::{Cnf, Lit, Var};
use absolver_nonlinear::Expr;
use absolver_num::Rational;
use std::ops::RangeBounds;

/// Rationals `n/d` with numerator and denominator drawn from the given
/// ranges (the denominator range must be positive).
pub fn rational(
    num: impl RangeBounds<i64> + 'static,
    den: impl RangeBounds<i64> + 'static,
) -> Gen<Rational> {
    let n = gen::ints(num);
    let d = gen::ints(den);
    Gen::new(move |src| {
        let d = d.generate(src);
        assert!(d > 0, "rational() denominator range must be positive");
        Rational::new(n.generate(src), d)
    })
}

/// Integer-valued rationals.
pub fn rational_int(range: impl RangeBounds<i64> + 'static) -> Gen<Rational> {
    gen::ints(range).map(Rational::from_int)
}

/// Comparison operators, simplest-first (`Le` is the zero-tape value).
pub fn cmp_op() -> Gen<CmpOp> {
    gen::from_slice(&[CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt, CmpOp::Eq])
}

/// Literals over variables `0..num_vars`.
pub fn lit(num_vars: usize) -> Gen<Lit> {
    assert!(num_vars > 0);
    let var = gen::ints(0..num_vars);
    let neg = gen::bool_any();
    Gen::new(move |src| {
        let v = Var::new(var.generate(src) as u32);
        if neg.generate(src) {
            v.negative()
        } else {
            v.positive()
        }
    })
}

/// Signed DIMACS literals over variables `1..=max_var`.
pub fn dimacs_lit(max_var: i32) -> Gen<i32> {
    assert!(max_var >= 1);
    let var = gen::ints(1..=max_var);
    let neg = gen::bool_any();
    Gen::new(move |src| {
        let v = var.generate(src);
        if neg.generate(src) {
            -v
        } else {
            v
        }
    })
}

/// A DIMACS clause: literals over `1..=max_var`, length from `len`.
pub fn dimacs_clause(max_var: i32, len: impl RangeBounds<usize> + 'static) -> Gen<Vec<i32>> {
    gen::vec_of(dimacs_lit(max_var), len)
}

/// A CNF over `num_vars` variables with a clause count from `clauses`
/// and clause lengths from `clause_len`.
pub fn cnf(
    num_vars: usize,
    clauses: impl RangeBounds<usize> + 'static,
    clause_len: impl RangeBounds<usize> + 'static,
) -> Gen<Cnf> {
    let clause_gen = dimacs_clause(num_vars as i32, clause_len);
    let all = gen::vec_of(clause_gen, clauses);
    Gen::new(move |src| {
        let mut cnf = Cnf::new(num_vars);
        for clause in all.generate(src) {
            cnf.add_dimacs_clause(&clause);
        }
        cnf
    })
}

/// Sparse linear constraints over `num_vars` variables: 1–3 terms with
/// integer coefficients from `coeff`, an operator, and an integer
/// right-hand side from `rhs`.
pub fn lin_constraint(
    num_vars: usize,
    coeff: impl RangeBounds<i64> + 'static,
    rhs: impl RangeBounds<i64> + 'static,
) -> Gen<LinearConstraint> {
    let term = {
        let var = gen::ints(0..num_vars);
        let k = gen::ints(coeff);
        Gen::new(move |src| (var.generate(src), Rational::from_int(k.generate(src))))
    };
    let terms = gen::vec_of(term, 1..4);
    let op = cmp_op();
    let rhs = rational_int(rhs);
    Gen::new(move |src| {
        LinearConstraint::new(
            LinExpr::from_terms(terms.generate(src)),
            op.generate(src),
            rhs.generate(src),
        )
    })
}

/// Which node kinds [`expr`] may produce.
#[derive(Debug, Clone, Copy)]
pub struct ExprProfile {
    /// Allow rational (non-integer) constants in leaves.
    pub rational_consts: bool,
    /// Allow `sin`.
    pub sin: bool,
    /// Allow `cos`.
    pub cos: bool,
    /// Allow `abs`.
    pub abs: bool,
    /// Allow `sqrt`.
    pub sqrt: bool,
    /// Allow division.
    pub div: bool,
    /// Maximum exponent for `pow` (0 disables `pow`).
    pub max_pow: i32,
}

impl ExprProfile {
    /// Everything on — the profile of the format round-trip tests.
    pub fn rich() -> ExprProfile {
        ExprProfile {
            rational_consts: true,
            sin: true,
            cos: false,
            abs: true,
            sqrt: true,
            div: true,
            max_pow: 3,
        }
    }

    /// Polynomial-ish expressions with trig but no sqrt, matching the
    /// nonlinear solver's property suite.
    pub fn polyish() -> ExprProfile {
        ExprProfile {
            rational_consts: false,
            sin: true,
            cos: true,
            abs: true,
            sqrt: false,
            div: true,
            max_pow: 3,
        }
    }
}

/// Random expression trees over variables `0..num_vars`, at most
/// `depth` operator levels deep, drawing node kinds from `profile`.
pub fn expr(num_vars: usize, depth: u32, profile: ExprProfile) -> Gen<Expr> {
    let mut leaves: Vec<Gen<Expr>> = vec![gen::ints(-9i64..=9).map(Expr::int)];
    if num_vars > 0 {
        leaves.push(gen::ints(0..num_vars).map(Expr::var));
    }
    if profile.rational_consts {
        leaves.push(rational(1..=20, 1..=10).map(Expr::constant));
    }
    let leaf = gen::one_of(leaves);
    if depth == 0 {
        return leaf;
    }
    let inner = expr(num_vars, depth - 1, profile);
    let mut branches: Vec<Gen<Expr>> = vec![leaf];
    let binop = |f: fn(Expr, Expr) -> Expr| {
        let inner = inner.clone();
        Gen::new(move |src| f(inner.generate(src), inner.generate(src)))
    };
    branches.push(binop(|a, b| a + b));
    branches.push(binop(|a, b| a - b));
    branches.push(binop(|a, b| a * b));
    if profile.div {
        branches.push(binop(|a, b| a / b));
    }
    branches.push(inner.clone().map(|a| -a));
    if profile.max_pow > 0 {
        let pow_inner = inner.clone();
        let exp = gen::ints(1..=profile.max_pow);
        branches.push(Gen::new(move |src| {
            pow_inner.generate(src).pow(exp.generate(src))
        }));
    }
    if profile.sin {
        branches.push(inner.clone().map(Expr::sin));
    }
    if profile.cos {
        branches.push(inner.clone().map(Expr::cos));
    }
    if profile.abs {
        branches.push(inner.clone().map(Expr::abs));
    }
    if profile.sqrt {
        branches.push(inner.clone().map(Expr::sqrt));
    }
    gen::one_of(branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Source;

    #[test]
    fn rationals_are_in_range_and_normalised() {
        let g = rational(-20..=20, 1..=10);
        let mut src = Source::record(1);
        for _ in 0..200 {
            let q = g.generate(&mut src);
            assert!(q.to_f64().abs() <= 20.0);
        }
    }

    #[test]
    fn dimacs_clauses_are_well_formed() {
        let g = dimacs_clause(8, 1..4);
        let mut src = Source::record(2);
        for _ in 0..200 {
            let c = g.generate(&mut src);
            assert!(!c.is_empty() && c.len() <= 3);
            assert!(c.iter().all(|&l| l != 0 && l.abs() <= 8));
        }
    }

    #[test]
    fn cnf_generation_matches_parameters() {
        let g = cnf(6, 1..=10, 1..=3);
        let mut src = Source::record(3);
        for _ in 0..50 {
            let f = g.generate(&mut src);
            assert_eq!(f.num_vars(), 6);
            assert!((1..=10).contains(&f.len()));
        }
    }

    #[test]
    fn exprs_respect_depth_and_evaluate() {
        fn depth_of(e: &Expr) -> u32 {
            match e {
                Expr::Const(_) | Expr::Var(_) => 0,
                Expr::Neg(a)
                | Expr::Pow(a, _)
                | Expr::Sin(a)
                | Expr::Cos(a)
                | Expr::Exp(a)
                | Expr::Ln(a)
                | Expr::Sqrt(a)
                | Expr::Abs(a) => 1 + depth_of(a),
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    1 + depth_of(a).max(depth_of(b))
                }
            }
        }
        let g = expr(2, 3, ExprProfile::rich());
        let mut src = Source::record(4);
        for _ in 0..100 {
            let e = g.generate(&mut src);
            assert!(depth_of(&e) <= 3);
            let _ = e.eval_f64(&[0.5, -0.5]);
        }
    }

    #[test]
    fn lin_constraints_evaluate() {
        let g = lin_constraint(3, -4..=4, -6..=6);
        let mut src = Source::record(5);
        let point = vec![Rational::one(), Rational::zero(), Rational::from_int(-1)];
        for _ in 0..100 {
            let c = g.generate(&mut src);
            let _ = c.eval(&point);
        }
    }
}
