//! Deterministic pseudo-random number generation.
//!
//! Two classic generators — [`SplitMix64`] for seeding and cheap one-off
//! streams, [`Xoshiro256pp`] (xoshiro256++) as the workhorse — plus the
//! small [`Rng`] convenience trait that replaces the external `rand`
//! crate throughout the workspace. Both generators are fully
//! deterministic functions of their seed, so every randomized test in
//! the repo is reproducible from a single `u64`.

use std::ops::{Bound, RangeBounds};

/// Minimal core trait: a stream of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64 (Steele, Lea, Flood 2014). One u64 of state; used for
/// seed expansion and derived per-case seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ (Blackman, Vigna 2019): 256 bits of state, excellent
/// statistical quality, `#[derive(Clone)]`-cheap.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The default test RNG of the workspace.
pub type TestRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // An all-zero state would be a fixed point.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256pp { s }
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                // Lemire-style widening multiply; the residual bias is
                // far below anything a test could observe.
                let draw = rng.next_u64() as u128;
                let offset = (draw * width) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`] — the `rand`-like surface
/// the rest of the workspace programs against.
pub trait Rng: RngCore {
    /// A uniform value from an integer or float range
    /// (`1..=8`, `0..n`, `-3.0..=3.0`, …).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform + RangeEndpoint,
        R: RangeBounds<T>,
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.successor(),
            Bound::Unbounded => panic!("gen_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.predecessor(),
            Bound::Unbounded => panic!("gen_range requires an upper bound"),
        };
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Endpoint adjustment for exclusive range bounds.
pub trait RangeEndpoint: Copy {
    /// The next-larger representable value.
    fn successor(self) -> Self;
    /// The next-smaller representable value.
    fn predecessor(self) -> Self;
}

macro_rules! impl_endpoint_int {
    ($($t:ty),*) => {$(
        impl RangeEndpoint for $t {
            fn successor(self) -> Self { self + 1 }
            fn predecessor(self) -> Self { self - 1 }
        }
    )*};
}

impl_endpoint_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl RangeEndpoint for f64 {
    fn successor(self) -> Self {
        self
    }
    fn predecessor(self) -> Self {
        // `lo..hi` over floats is treated as `[lo, hi]` with the
        // half-open distinction ignored — a measure-zero difference.
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567, cross-checked against the
        // published reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_spread() {
        let mut r1 = Xoshiro256pp::seed_from_u64(42);
        let mut r2 = Xoshiro256pp::seed_from_u64(42);
        let seq1: Vec<u64> = (0..16).map(|_| r1.next_u64()).collect();
        let seq2: Vec<u64> = (0..16).map(|_| r2.next_u64()).collect();
        assert_eq!(seq1, seq2);
        let mut r3 = Xoshiro256pp::seed_from_u64(43);
        let seq3: Vec<u64> = (0..16).map(|_| r3.next_u64()).collect();
        assert_ne!(seq1, seq3);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v: i64 = rng.gen_range(-3..=3);
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::seed_from_u64(99);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
