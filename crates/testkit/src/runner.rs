//! The property-test runner: case generation, failure shrinking, and
//! regression-seed persistence.
//!
//! Use through the [`property!`](crate::property) macro:
//!
//! ```
//! use absolver_testkit::{gen, property};
//!
//! property! {
//!     #![cases = 64]
//!     fn addition_commutes(a in gen::ints(-1000i64..=1000), b in gen::ints(-1000i64..=1000)) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Environment knobs:
//!
//! * `TESTKIT_SEED` — base seed (decimal or `0x…` hex), or `random`
//!   for a time-derived seed. Unset: a stable per-test default, so
//!   runs are bit-for-bit deterministic.
//! * `TESTKIT_CASES` — overrides every test's case count.
//! * `TESTKIT_PERSIST=0` — don't write regression tapes on failure.
//!
//! On failure the runner shrinks the recorded choice tape (chunk
//! deletion, zeroing, per-entry minimization — see [`crate::gen`]),
//! reports the minimal counterexample, and appends the shrunk tape to
//! `testkit-regressions/<module>.txt` in the failing crate so the case
//! is replayed first on every future run.

use crate::gen::{Gen, Source};
use crate::rng::{RngCore, SplitMix64};
use std::cell::Cell;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

/// Panic payload used by [`assume!`](crate::assume) / [`reject_case`]
/// to discard a test case without failing it.
pub struct AssumeRejected;

/// Discards the current test case: the runner counts it as a skip and
/// generates a replacement.
pub fn reject_case() -> ! {
    panic::panic_any(AssumeRejected)
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while a
/// testkit case is being evaluated, so expected failures during search
/// and shrinking don't spam the test output.
fn install_panic_filter() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

fn catch_silent<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Configuration for one property test.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; `None` derives a stable seed from the test name.
    pub seed: Option<u64>,
    /// Replay budget for shrinking.
    pub max_shrink_iters: u32,
    /// Regression file, if persistence is enabled.
    pub regression_file: Option<PathBuf>,
    /// Fully qualified test name (module path + function).
    pub test_name: String,
}

impl Config {
    /// Builds the config for one `property!` test. `cases == 0` means
    /// "use the default" (256, like proptest's).
    pub fn for_test(manifest_dir: &str, module: &str, name: &str, cases: u32) -> Config {
        let cases = match std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) => n,
            None if cases == 0 => 256,
            None => cases,
        };
        let seed = match std::env::var("TESTKIT_SEED") {
            Ok(v) if v == "random" => Some(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0x5EED),
            ),
            Ok(v) => parse_seed(&v),
            Err(_) => None,
        };
        let persist = std::env::var("TESTKIT_PERSIST")
            .map(|v| v != "0")
            .unwrap_or(true);
        let module_file: String = module.replace("::", "-");
        let regression_file = persist.then(|| {
            PathBuf::from(manifest_dir)
                .join("testkit-regressions")
                .join(format!("{module_file}.txt"))
        });
        Config {
            cases,
            seed,
            max_shrink_iters: 2048,
            regression_file,
            test_name: format!("{module}::{name}"),
        }
    }

    fn local_name(&self) -> &str {
        self.test_name
            .rsplit("::")
            .next()
            .unwrap_or(&self.test_name)
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// FNV-1a over the test name: the stable default base seed.
fn default_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

enum CaseOutcome {
    Pass,
    Skip,
    Fail(String),
}

fn run_case<T: 'static>(gen: &Gen<T>, prop: &impl Fn(T), src: &mut Source) -> CaseOutcome {
    match catch_silent(|| prop(gen.generate(src))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<AssumeRejected>().is_some() {
                CaseOutcome::Skip
            } else {
                CaseOutcome::Fail(payload_message(payload.as_ref()))
            }
        }
    }
}

/// Replays `tape`; on failure returns the consumed tape prefix and the
/// failure message.
fn replay_fails<T: 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(T),
    tape: &[u64],
) -> Option<(Vec<u64>, String)> {
    let mut src = Source::replay(tape.to_vec());
    match run_case(gen, prop, &mut src) {
        CaseOutcome::Fail(msg) => {
            let consumed = src.consumed().min(tape.len());
            Some((tape[..consumed].to_vec(), msg))
        }
        _ => None,
    }
}

/// Greedy tape shrinking: chunk deletion, chunk zeroing, and
/// per-element minimization, iterated to a fixpoint or the budget.
fn shrink_tape<T: 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(T),
    mut tape: Vec<u64>,
    mut msg: String,
    budget: u32,
) -> (Vec<u64>, String) {
    let mut spent = 0u32;
    let attempt = |cand: &[u64], spent: &mut u32| -> Option<(Vec<u64>, String)> {
        if *spent >= budget {
            return None;
        }
        *spent += 1;
        replay_fails(gen, prop, cand)
    };
    loop {
        let mut improved = false;

        // Delete chunks, largest first.
        for size in [32usize, 8, 4, 2, 1] {
            let mut i = 0;
            while i + size <= tape.len() {
                let mut cand = tape.clone();
                cand.drain(i..i + size);
                if let Some((t, m)) = attempt(&cand, &mut spent) {
                    if t.len() < tape.len() || (t.len() == tape.len() && t < tape) {
                        tape = t;
                        msg = m;
                        improved = true;
                        continue; // same i, shorter tape
                    }
                }
                i += 1;
            }
        }

        // Zero non-zero chunks.
        for size in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= tape.len() {
                if tape[i..i + size].iter().any(|&v| v != 0) {
                    let mut cand = tape.clone();
                    cand[i..i + size].iter_mut().for_each(|v| *v = 0);
                    if let Some((t, m)) = attempt(&cand, &mut spent) {
                        if t < tape {
                            tape = t;
                            msg = m;
                            improved = true;
                        }
                    }
                }
                i += size;
            }
        }

        // Minimize entries individually: zero, halve, decrement.
        for i in 0..tape.len() {
            while tape.get(i).copied().unwrap_or(0) != 0 {
                let v = tape[i];
                let mut done = true;
                for smaller in [0, v / 2, v - 1] {
                    if smaller >= v {
                        continue;
                    }
                    let mut cand = tape.clone();
                    cand[i] = smaller;
                    if let Some((t, m)) = attempt(&cand, &mut spent) {
                        if t < tape {
                            tape = t;
                            msg = m;
                            improved = true;
                            done = false;
                            break;
                        }
                    }
                }
                if done {
                    break;
                }
            }
        }

        if !improved || spent >= budget {
            return (tape, msg);
        }
    }
}

fn debug_value<T: Debug + 'static>(gen: &Gen<T>, tape: &[u64]) -> String {
    let mut src = Source::replay(tape.to_vec());
    match catch_silent(|| format!("{:?}", gen.generate(&mut src))) {
        Ok(s) => s,
        Err(_) => "<value construction panicked>".to_string(),
    }
}

fn format_tape(tape: &[u64]) -> String {
    let mut out = String::new();
    for (i, v) in tape.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{v:x}");
    }
    out
}

fn load_regression_tapes(cfg: &Config) -> Vec<Vec<u64>> {
    let Some(path) = &cfg.regression_file else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut tapes = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let body = line.split('#').next().unwrap_or("");
        let mut parts = body.split_whitespace();
        if parts.next() != Some(cfg.local_name()) {
            continue;
        }
        let tape: Option<Vec<u64>> = parts.map(|t| u64::from_str_radix(t, 16).ok()).collect();
        if let Some(tape) = tape {
            tapes.push(tape);
        }
    }
    tapes
}

fn persist_regression(cfg: &Config, tape: &[u64], value: &str) {
    let Some(path) = &cfg.regression_file else {
        return;
    };
    // Don't duplicate an already-recorded tape.
    if load_regression_tapes(cfg).iter().any(|t| t == tape) {
        return;
    }
    let header = "\
# Testkit regression tapes. Each non-comment line is:
#   <test-fn-name> <hex choice tape...>  # shrunk counterexample
# These cases are replayed before any new random cases are generated.
# Check this file in to source control.
";
    let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| header.to_string());
    if !text.ends_with('\n') {
        text.push('\n');
    }
    let one_line = value.replace('\n', " ");
    let short: String = one_line.chars().take(160).collect();
    let _ = writeln!(
        text,
        "{} {}  # shrinks to {}",
        cfg.local_name(),
        format_tape(tape),
        short
    );
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, text);
}

/// Runs a property against `cfg.cases` generated inputs, replaying any
/// persisted regression tapes first. Panics with a report (minimal
/// counterexample, seed, tape) on failure.
pub fn check<T: Debug + 'static>(cfg: &Config, gen: &Gen<T>, prop: impl Fn(T)) {
    install_panic_filter();

    for tape in load_regression_tapes(cfg) {
        if let Some((tape, msg)) = replay_fails(gen, &prop, &tape) {
            let value = debug_value(gen, &tape);
            panic!(
                "[testkit] persisted regression case for '{}' still fails\n  \
                 input: {}\n  tape: {}\n  failure: {}",
                cfg.test_name,
                value,
                format_tape(&tape),
                msg,
            );
        }
    }

    let base_seed = cfg.seed.unwrap_or_else(|| default_seed(&cfg.test_name));
    let mut passed = 0u32;
    let mut skipped = 0u32;
    let mut case_index = 0u64;
    while passed < cfg.cases {
        if skipped > 10 * cfg.cases + 100 {
            panic!(
                "[testkit] property '{}' rejected too many cases ({} skips for {} passes); \
                 loosen its generators or assumptions",
                cfg.test_name, skipped, passed,
            );
        }
        let case_seed = SplitMix64::new(base_seed.wrapping_add(case_index)).next_u64();
        case_index += 1;
        let mut src = Source::record(case_seed);
        match run_case(gen, &prop, &mut src) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Skip => skipped += 1,
            CaseOutcome::Fail(msg) => {
                let tape = src.tape()[..src.consumed().min(src.tape().len())].to_vec();
                let (tape, msg) = shrink_tape(gen, &prop, tape, msg, cfg.max_shrink_iters);
                let value = debug_value(gen, &tape);
                persist_regression(cfg, &tape, &value);
                panic!(
                    "[testkit] property '{}' failed after {} passing case(s)\n  \
                     minimal input: {}\n  failure: {}\n  seed: {:#x} (case {})\n  tape: {}\n  \
                     rerun just this case via its testkit-regressions entry, or the whole \
                     sequence with TESTKIT_SEED={:#x}",
                    cfg.test_name,
                    passed,
                    value,
                    msg,
                    base_seed,
                    case_index - 1,
                    format_tape(&tape),
                    base_seed,
                );
            }
        }
    }
}

/// Defines property tests. Each function body runs against many
/// generated inputs; bindings use `name in generator` syntax. An
/// optional leading `#![cases = N]` sets the per-test case count for
/// the whole block.
#[macro_export]
macro_rules! property {
    ( #![cases = $n:expr] $($rest:tt)* ) => {
        $crate::__property_impl! { ($n) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__property_impl! { (0u32) $($rest)* }
    };
}

/// Implementation detail of [`property!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __property_impl {
    ( ($n:expr) ) => {};
    ( ($n:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg = $crate::runner::Config::for_test(
                env!("CARGO_MANIFEST_DIR"),
                module_path!(),
                stringify!($name),
                $n,
            );
            let __gen = {
                $(let $arg = $gen;)+
                $crate::gen::Gen::new(move |__src| ( $($arg.generate(__src),)+ ))
            };
            $crate::runner::check(&__cfg, &__gen, |__value| {
                let ( $($arg,)+ ) = __value;
                $body
            });
        }
        $crate::__property_impl! { ($n) $($rest)* }
    };
}

/// Discards the current case unless the condition holds — the
/// equivalent of proptest's `prop_assume!`.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            $crate::runner::reject_case();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cfg(name: &str, cases: u32) -> Config {
        Config {
            cases,
            seed: Some(0x7E57_4B17),
            max_shrink_iters: 2048,
            regression_file: None,
            test_name: format!("testkit::selftest::{name}"),
        }
    }

    #[test]
    fn passing_property_passes() {
        let g = gen::ints(-50i64..=50);
        check(&cfg("pass", 200), &g, |v| assert!(v.abs() <= 50));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Fails for v >= 10; minimal counterexample is exactly 10.
        let g = gen::ints(0i64..=1000);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(&cfg("shrink_int", 500), &g, |v| assert!(v < 10, "got {v}"));
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("minimal input: 10"), "{msg}");
    }

    #[test]
    fn vec_failures_shrink_in_length_and_magnitude() {
        // Fails when the sum exceeds 100; minimal case is one element
        // of exactly 101.
        let g = gen::vec_of(gen::ints(0i64..=1000), 0..=20);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(&cfg("shrink_vec", 500), &g, |v| {
                let s: i64 = v.iter().sum();
                assert!(s <= 100, "sum {s}");
            });
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("minimal input: [101]"), "{msg}");
    }

    #[test]
    fn same_seed_is_bit_for_bit_deterministic() {
        let collect = |seed: u64| {
            let mut values = Vec::new();
            let g = gen::vec_of(gen::ints(-1000i64..=1000), 0..=8);
            let mut config = cfg("determinism", 50);
            config.seed = Some(seed);
            let values_cell = std::cell::RefCell::new(&mut values);
            check(&config, &g, |v| {
                values_cell.borrow_mut().push(v);
            });
            values
        };
        assert_eq!(collect(777), collect(777));
        assert_ne!(collect(777), collect(778));
    }

    #[test]
    fn assume_skips_but_eventually_errors_when_too_strict() {
        // A property that rejects everything must report, not hang.
        let g = gen::ints(0i64..=10);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(&cfg("reject_all", 20), &g, |_| reject_case());
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("rejected too many cases"), "{msg}");
    }

    #[test]
    fn filter_values_respect_predicate() {
        let g = gen::ints(-100i64..=100).filter(|v| v % 2 == 0);
        check(&cfg("filter", 200), &g, |v| assert_eq!(v % 2, 0));
    }
}
