//! A small wall-clock micro-benchmark timer replacing the external
//! `criterion` dependency.
//!
//! Each benchmark is auto-calibrated so a sample takes roughly the
//! target sample time, warmed up, then timed over N samples; the
//! report shows median, p95, and minimum per-iteration times.
//!
//! ```no_run
//! use absolver_testkit::bench::{black_box, Bench};
//!
//! let mut b = Bench::new();
//! b.group("num");
//! b.bench("add", || black_box(2u64) + black_box(3u64));
//! b.report();
//! ```
//!
//! Environment knobs: `TESTKIT_BENCH_SAMPLES`, `TESTKIT_BENCH_QUICK=1`
//! (tiny budgets, for smoke-testing the harness itself).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing results of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Wall-clock time of each sample, divided by iterations per sample.
    pub per_iter: Vec<Duration>,
    /// Iterations per sample chosen by calibration.
    pub iters: u64,
}

impl BenchStats {
    fn sorted_ns(&self) -> Vec<f64> {
        let mut ns: Vec<f64> = self
            .per_iter
            .iter()
            .map(|d| d.as_secs_f64() * 1e9)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns
    }

    /// Median per-iteration time.
    pub fn median(&self) -> Duration {
        let ns = self.sorted_ns();
        let mid = ns.len() / 2;
        let v = if ns.len().is_multiple_of(2) {
            (ns[mid - 1] + ns[mid]) / 2.0
        } else {
            ns[mid]
        };
        Duration::from_secs_f64(v / 1e9)
    }

    /// 95th-percentile per-iteration time.
    pub fn p95(&self) -> Duration {
        let ns = self.sorted_ns();
        let idx = ((ns.len() as f64 * 0.95).ceil() as usize).clamp(1, ns.len()) - 1;
        Duration::from_secs_f64(ns[idx] / 1e9)
    }

    /// Fastest per-iteration time.
    pub fn min(&self) -> Duration {
        Duration::from_secs_f64(self.sorted_ns()[0] / 1e9)
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark suite: runs closures under a consistent timing protocol
/// and prints a report.
pub struct Bench {
    samples: u32,
    warmup: Duration,
    target_sample_time: Duration,
    group: String,
    results: Vec<(String, BenchStats)>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

impl Bench {
    /// A suite with default settings (30 samples, ~2 ms per sample),
    /// honouring the `TESTKIT_BENCH_*` environment variables.
    pub fn new() -> Bench {
        let quick = std::env::var("TESTKIT_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let samples = std::env::var("TESTKIT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 5 } else { 30 });
        Bench {
            samples,
            warmup: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(100)
            },
            target_sample_time: if quick {
                Duration::from_micros(200)
            } else {
                Duration::from_millis(2)
            },
            group: String::new(),
            results: Vec::new(),
        }
    }

    /// Overrides the sample count for subsequent benchmarks (useful for
    /// slow end-to-end cases).
    pub fn set_samples(&mut self, samples: u32) {
        self.samples = samples.max(2);
    }

    /// Starts a named group; subsequent results are prefixed `group/`.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_string();
    }

    fn full_name(&self, name: &str) -> String {
        if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.group, name)
        }
    }

    /// Benchmarks `f`, auto-calibrating iterations per sample.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: time one call, pick iterations to fill the target.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample_time.as_nanos() / once.as_nanos().max(1))
            .clamp(1, 10_000_000) as u64;

        // Warmup.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            black_box(f());
        }

        let mut per_iter = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed() / iters as u32);
        }
        self.push_result(name, BenchStats { per_iter, iters });
    }

    /// Benchmarks `routine` with a fresh, untimed `setup` product per
    /// sample (for routines that consume their input, e.g. a solver
    /// that is mutated by solving).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let s = setup();
            black_box(routine(s));
        }
        let mut per_iter = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let s = setup();
            let t = Instant::now();
            black_box(routine(s));
            per_iter.push(t.elapsed());
        }
        self.push_result(name, BenchStats { per_iter, iters: 1 });
    }

    fn push_result(&mut self, name: &str, stats: BenchStats) {
        let full = self.full_name(name);
        println!(
            "bench {full:<40} median {:>10}   p95 {:>10}   min {:>10}   ({} samples x {} iters)",
            human(stats.median()),
            human(stats.p95()),
            human(stats.min()),
            stats.per_iter.len(),
            stats.iters,
        );
        self.results.push((full, stats));
    }

    /// All collected results.
    pub fn results(&self) -> &[(String, BenchStats)] {
        &self.results
    }

    /// Prints the final summary table.
    pub fn report(&self) {
        println!(
            "\n== benchmark summary ({} benchmarks) ==",
            self.results.len()
        );
        for (name, stats) in &self.results {
            println!(
                "{name:<44} median {:>10}   p95 {:>10}",
                human(stats.median()),
                human(stats.p95()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles() {
        let stats = BenchStats {
            per_iter: (1..=100).map(Duration::from_nanos).collect(),
            iters: 1,
        };
        assert_eq!(stats.min(), Duration::from_nanos(1));
        let med = stats.median().as_nanos();
        assert!((50..=51).contains(&med), "{med}");
        let p95 = stats.p95().as_nanos();
        assert!((94..=96).contains(&p95), "{p95}");
    }

    #[test]
    fn bench_runs_and_records() {
        std::env::set_var("TESTKIT_BENCH_QUICK", "1");
        let mut b = Bench::new();
        b.group("selftest");
        let mut counter = 0u64;
        b.bench("count", || {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.results().len(), 1);
        let (name, stats) = &b.results()[0];
        assert_eq!(name, "selftest/count");
        assert!(!stats.per_iter.is_empty());
        assert!(stats.median() >= stats.min());
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(human(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(human(Duration::from_millis(3)), "3.00 ms");
    }
}
