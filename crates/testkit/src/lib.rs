//! Self-contained test harness for the ABsolver workspace.
//!
//! The workspace must build and test with the network disabled, so the
//! external `rand`, `proptest`, and `criterion` dev-dependencies are
//! replaced by this crate:
//!
//! * [`rng`] — deterministic PRNGs (SplitMix64, xoshiro256++) behind a
//!   small [`rng::Rng`] convenience trait.
//! * [`gen`] — composable value generators over a recorded choice
//!   tape, which is what makes shrinking work (see below).
//! * [`runner`] + the [`property!`] macro — a property-testing runner
//!   with configurable case counts, automatic input shrinking, and
//!   persisted regression tapes (`testkit-regressions/` directories,
//!   in the spirit of proptest's `proptest-regressions`).
//! * [`domain`] — generators for workspace types: rationals, literals,
//!   CNF clauses, linear constraints, nonlinear expression trees.
//! * [`bench`] — a wall-clock micro-benchmark timer (warmup +
//!   calibrated samples, median/p95 reporting).
//!
//! # How shrinking works
//!
//! Generators draw raw `u64` choices from a [`gen::Source`]. During
//! search the source records every choice; when a case fails, the
//! runner *shrinks the tape* — deleting chunks, zeroing spans,
//! minimizing entries — and replays the generator on each candidate.
//! Replay is total (missing choices read as zero), every primitive
//! decodes zero to its simplest value, and the failing case is
//! re-checked after every mutation, so the reported counterexample is
//! both minimal-ish and always a genuine generator output. This is the
//! Hypothesis "internal reduction" design, and it means `map`, `filter`,
//! and hand-rolled recursive generators all shrink with no extra code.
//!
//! # Determinism
//!
//! With no environment overrides, every property test derives its base
//! seed from its own name: two runs of the same binary explore
//! identical case sequences, bit for bit. Set `TESTKIT_SEED` to
//! explore elsewhere (or to reproduce a reported failure), and
//! `TESTKIT_CASES` to scale case counts up or down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod domain;
pub mod gen;
pub mod rng;
pub mod runner;

pub use gen::{Gen, Source};
pub use rng::{Rng, RngCore, SplitMix64, TestRng, Xoshiro256pp};
pub use runner::{check, Config};

// A deliberately-failing shrinking demonstration, kept as documentation
// of the harness's behaviour. Run with:
//     TESTKIT_DEMO_SHRINK=1 cargo test -p absolver-testkit demo_shrinking -- --nocapture
// It fails (by design) with a minimal counterexample: the vector
// `[101]`, shrunk from whatever larger random case first tripped it.
#[cfg(test)]
mod demo {
    crate::property! {
        /// Demonstration: "no short vector sums past 100" is false, and
        /// the shrinker pins the minimal witness `[101]`.
        fn demo_shrinking(v in crate::gen::vec_of(crate::gen::ints(0i64..=1000), 0..=20)) {
            if std::env::var("TESTKIT_DEMO_SHRINK").is_ok() {
                let s: i64 = v.iter().sum();
                assert!(s <= 100, "sum {s} exceeds 100");
            }
        }
    }
}
