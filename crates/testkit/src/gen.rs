//! Random-value generators with tape-based shrinking.
//!
//! A [`Gen<T>`] is a function from a [`Source`] of raw `u64` choices to
//! a value. In *record* mode the source draws fresh choices from a
//! seeded [`Xoshiro256pp`](crate::rng::Xoshiro256pp) and logs them; in
//! *replay* mode it reads a stored tape (padding with zeros once
//! exhausted). Because a generator is a total function of its tape, the
//! runner can shrink a failing case by simplifying the *tape* — delete
//! chunks, zero spans, minimize entries — and replaying: every
//! candidate is automatically a valid generator output, and shrinking
//! works through [`Gen::map`], recursion, and filtering for free.
//!
//! All primitive generators decode `0` to their simplest value (zero,
//! the range's closest-to-origin point, the empty vector, `false`), so
//! tapes of zeros are minimal counterexamples.

use crate::rng::{RngCore, Xoshiro256pp};
use std::ops::{Bound, RangeBounds};
use std::rc::Rc;

/// A stream of raw `u64` choices backing generator execution.
#[derive(Debug)]
pub struct Source {
    tape: Vec<u64>,
    pos: usize,
    rng: Option<Xoshiro256pp>,
}

impl Source {
    /// A recording source: choices come from a PRNG seeded with `seed`
    /// and are logged to the tape.
    pub fn record(seed: u64) -> Source {
        Source {
            tape: Vec::new(),
            pos: 0,
            rng: Some(Xoshiro256pp::seed_from_u64(seed)),
        }
    }

    /// A replaying source: choices come from `tape`; draws past the end
    /// return `0`.
    pub fn replay(tape: Vec<u64>) -> Source {
        Source {
            tape,
            pos: 0,
            rng: None,
        }
    }

    /// The next raw choice.
    pub fn draw(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                v
            }
            None => self.tape.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        v
    }

    /// How many choices have been drawn so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// The recorded (or supplied) tape.
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }
}

/// A composable random-value generator.
///
/// Cheaply cloneable (the underlying closure is reference-counted).
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generation function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Produces one value from the source.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Applies `f` to every generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.generate(src)))
    }

    /// Retains only values satisfying `pred`, retrying with fresh
    /// choices. After 100 straight rejections the whole test case is
    /// discarded (counted as a skip by the runner).
    pub fn filter(self, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        Gen::new(move |src| {
            for _ in 0..100 {
                let v = self.generate(src);
                if pred(&v) {
                    return v;
                }
            }
            crate::runner::reject_case()
        })
    }
}

/// Converts any `RangeBounds` over integers to inclusive `(lo, hi)`.
fn int_bounds(range: impl RangeBounds<i128>, min: i128, max: i128) -> (i128, i128) {
    let lo = match range.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v + 1,
        Bound::Unbounded => min,
    };
    let hi = match range.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v - 1,
        Bound::Unbounded => max,
    };
    assert!(lo <= hi, "empty generator range {lo}..={hi}");
    (lo, hi)
}

/// Integer types usable with [`ints`].
pub trait GenInt: Copy + 'static {
    /// Widening conversion.
    fn to_i128(self) -> i128;
    /// Narrowing conversion; the value is guaranteed in range.
    fn from_i128(v: i128) -> Self;
    /// Type minimum.
    const MIN_VALUE: i128;
    /// Type maximum.
    const MAX_VALUE: i128;
}

macro_rules! impl_gen_int {
    ($($t:ty),*) => {$(
        impl GenInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
            const MIN_VALUE: i128 = <$t>::MIN as i128;
            const MAX_VALUE: i128 = <$t>::MAX as i128;
        }
    )*};
}

impl_gen_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Maps a raw index into `[lo, hi]` in "simplicity order": index 0 is
/// the in-range value closest to zero, then values alternate outward
/// (`0, 1, -1, 2, -2, …`). Zeroed tapes therefore decode to the
/// simplest in-range value.
fn decode_simple(lo: i128, hi: i128, idx: i128) -> i128 {
    let origin = 0i128.clamp(lo, hi);
    let up = hi - origin;
    let down = origin - lo;
    let sym = up.min(down);
    if idx <= 2 * sym {
        if idx == 0 {
            origin
        } else if idx % 2 == 1 {
            origin + (idx + 1) / 2
        } else {
            origin - idx / 2
        }
    } else {
        let rest = idx - 2 * sym;
        if up > down {
            origin + sym + rest
        } else {
            origin - sym - rest
        }
    }
}

/// Uniform integers from a range (`ints(-4i64..=4)`, `ints(0usize..n)`).
pub fn ints<T: GenInt>(range: impl RangeBounds<T> + 'static) -> Gen<T> {
    let lo = match range.start_bound() {
        Bound::Included(&v) => Bound::Included(v.to_i128()),
        Bound::Excluded(&v) => Bound::Excluded(v.to_i128()),
        Bound::Unbounded => Bound::Unbounded,
    };
    let hi = match range.end_bound() {
        Bound::Included(&v) => Bound::Included(v.to_i128()),
        Bound::Excluded(&v) => Bound::Excluded(v.to_i128()),
        Bound::Unbounded => Bound::Unbounded,
    };
    let (lo, hi) = int_bounds((lo, hi), T::MIN_VALUE, T::MAX_VALUE);
    let width = (hi - lo + 1) as u128;
    Gen::new(move |src| {
        let idx = if width > u64::MAX as u128 {
            src.draw() as u128
        } else {
            src.draw() as u128 % width
        };
        T::from_i128(decode_simple(lo, hi, idx as i128))
    })
}

/// Any `i64`.
pub fn i64_any() -> Gen<i64> {
    ints(..)
}

/// Any `u64`.
pub fn u64_any() -> Gen<u64> {
    ints(..)
}

/// Any `i128`, built from two raw choices; zero tape decodes to 0.
pub fn i128_any() -> Gen<i128> {
    Gen::new(|src| {
        let hi = src.draw() as u128;
        let lo = src.draw() as u128;
        ((hi << 64) | lo) as i128
    })
}

/// Booleans; zero tape decodes to `false`.
pub fn bool_any() -> Gen<bool> {
    Gen::new(|src| src.draw() & 1 == 1)
}

/// A uniform `f64` in `[0, 1)`; zero tape decodes to `0.0`.
pub fn f64_unit() -> Gen<f64> {
    Gen::new(|src| (src.draw() >> 11) as f64 / (1u64 << 53) as f64)
}

/// A uniform `f64` in `[lo, hi)`; zero tape decodes to `lo`.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo <= hi, "empty f64 range");
    f64_unit().map(move |t| lo + t * (hi - lo))
}

/// A vector whose length is drawn from `len` and whose elements come
/// from `elem`. Zero tape decodes to the shortest allowed vector of
/// simplest elements.
pub fn vec_of<T: 'static>(elem: Gen<T>, len: impl RangeBounds<usize> + 'static) -> Gen<Vec<T>> {
    let len_gen = ints::<usize>((
        match len.start_bound() {
            Bound::Included(&v) => Bound::Included(v),
            Bound::Excluded(&v) => Bound::Excluded(v),
            Bound::Unbounded => Bound::Included(0),
        },
        match len.end_bound() {
            Bound::Included(&v) => Bound::Included(v),
            Bound::Excluded(&v) => Bound::Excluded(v),
            Bound::Unbounded => Bound::Included(64),
        },
    ));
    Gen::new(move |src| {
        let n = len_gen.generate(src);
        (0..n).map(|_| elem.generate(src)).collect()
    })
}

/// Chooses one of the given generators uniformly. Put the simplest
/// case first: index 0 (the zero tape) selects it.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of requires at least one generator");
    let idx = ints(0..gens.len());
    Gen::new(move |src| {
        let i = idx.generate(src);
        gens[i].generate(src)
    })
}

/// A uniformly chosen element of the slice (cloned). Put simple values
/// first: index 0 is what zero tapes decode to.
pub fn from_slice<T: Clone + 'static>(items: &[T]) -> Gen<T> {
    let items = items.to_vec();
    let idx = ints(0..items.len());
    Gen::new(move |src| items[idx.generate(src)].clone())
}

/// A string of characters drawn from `charset`, with length from `len`.
pub fn string_from_charset(charset: &str, len: impl RangeBounds<usize> + 'static) -> Gen<String> {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "empty charset");
    vec_of(from_slice(&chars), len).map(|v| v.into_iter().collect())
}

/// All printable ASCII (space through `~`) plus the extra characters.
pub fn ascii_string(extra: &str, len: impl RangeBounds<usize> + 'static) -> Gen<String> {
    let charset: String = (' '..='~').chain(extra.chars()).collect();
    string_from_charset(&charset, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tape_is_simplest() {
        let mut src = Source::replay(vec![]);
        assert_eq!(ints(-9i64..=9).generate(&mut src), 0);
        assert_eq!(ints(3i64..=9).generate(&mut src), 3);
        assert_eq!(ints(-9i64..=-4).generate(&mut src), -4);
        assert!(!bool_any().generate(&mut src));
        assert_eq!(f64_in(2.0, 5.0).generate(&mut src), 2.0);
        assert_eq!(
            vec_of(i64_any(), 0..10).generate(&mut src),
            Vec::<i64>::new()
        );
        assert_eq!(i128_any().generate(&mut src), 0);
    }

    #[test]
    fn simplicity_order_alternates() {
        let vals: Vec<i128> = (0..7).map(|i| decode_simple(-3, 3, i)).collect();
        assert_eq!(vals, vec![0, 1, -1, 2, -2, 3, -3]);
        let vals: Vec<i128> = (0..5).map(|i| decode_simple(-1, 3, i)).collect();
        assert_eq!(vals, vec![0, 1, -1, 2, 3]);
    }

    #[test]
    fn record_and_replay_agree() {
        let g = vec_of(ints(-100i64..=100), 0..=12);
        let mut rec = Source::record(0xFEED);
        let v1 = g.generate(&mut rec);
        let tape = rec.tape().to_vec();
        let mut rep = Source::replay(tape);
        let v2 = g.generate(&mut rep);
        assert_eq!(v1, v2);
    }

    #[test]
    fn ranges_are_respected() {
        let g = ints(1i32..=8);
        let mut src = Source::record(5);
        for _ in 0..500 {
            let v = g.generate(&mut src);
            assert!((1..=8).contains(&v));
        }
        let g = ints(0usize..7);
        for _ in 0..500 {
            assert!(g.generate(&mut src) < 7);
        }
    }

    #[test]
    fn full_width_ranges_cover_extremes() {
        let g = i64_any();
        let mut src = Source::record(11);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..200 {
            let v = g.generate(&mut src);
            neg |= v < -(1 << 40);
            pos |= v > 1 << 40;
        }
        assert!(neg && pos);
    }

    #[test]
    fn string_charsets() {
        let g = string_from_charset("abc", 0..=20);
        let mut src = Source::record(17);
        for _ in 0..100 {
            let s = g.generate(&mut src);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }
}
