//! Arbitrary-precision signed integers.
//!
//! [`BigInt`] is a compact sign-and-magnitude big integer over 64-bit limbs
//! (least-significant limb first). It implements exactly the operations the
//! exact-rational simplex in `absolver-linear` needs — ring arithmetic,
//! Euclidean division, gcd, comparisons and decimal I/O — with no external
//! dependencies.
//!
//! ```
//! use absolver_num::BigInt;
//!
//! let a: BigInt = "123456789012345678901234567890".parse().unwrap();
//! let b = BigInt::from(-42);
//! assert_eq!((&a * &b) / &b, a);
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`]. Zero is always represented with [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    Plus,
    Minus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants: the magnitude has no trailing zero limbs, and zero is
/// represented by an empty magnitude with positive sign.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Magnitude, least-significant limb first, no trailing zeros.
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: Vec::new(),
        }
    }

    /// The integer `1`.
    pub fn one() -> BigInt {
        BigInt::from(1u64)
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Returns `true` if `self` is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` if `self` is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus && !self.is_zero()
    }

    /// Returns `true` if `self` is `1`.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.len() == 1 && self.mag[0] == 1
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.sign == Sign::Plus {
            1
        } else {
            -1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: self.mag.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Plus if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Minus if m <= i64::MAX as u64 + 1 => {
                        Some((m as i128).wrapping_neg() as i64)
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Converts to `f64`, rounding to nearest; very large values saturate to
    /// `±inf`.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        let sign = if mag.is_empty() { Sign::Plus } else { sign };
        BigInt { sign, mag }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` assuming `a >= b` by magnitude.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &limb) in a.iter().enumerate() {
            let (d1, b1) = limb.overflowing_sub(*b.get(i).unwrap_or(&0));
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 || b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divides magnitude by a single limb, returning (quotient, remainder).
    fn divrem_mag_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u64)
    }

    fn shl_mag(a: &[u64], bits: u32) -> Vec<u64> {
        debug_assert!(bits < 64);
        if bits == 0 || a.is_empty() {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for &x in a {
            out.push((x << bits) | carry);
            carry = x >> (64 - bits);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    fn shr_mag(a: &[u64], bits: u32) -> Vec<u64> {
        debug_assert!(bits < 64);
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = vec![0u64; a.len()];
        let mut carry = 0u64;
        for i in (0..a.len()).rev() {
            out[i] = (a[i] >> bits) | carry;
            carry = a[i] << (64 - bits);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Knuth algorithm D on magnitudes; returns `(quotient, remainder)`.
    fn divrem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divrem_mag_limb(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Normalize so the top limb of the divisor has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let mut u = Self::shl_mag(a, shift);
        let v = Self::shl_mag(b, shift);
        let n = v.len();
        let m = u.len() - n;
        u.push(0);
        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_next = v[n - 2];
        for j in (0..=m).rev() {
            // Estimate the quotient limb from the top two/three limbs.
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            while qhat > u64::MAX as u128
                || qhat * v_next as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat > u64::MAX as u128 {
                    break;
                }
            }
            // Multiply-and-subtract.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;
            // Add back if we overshot (at most once).
            if borrow < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let rem = Self::shr_mag(&u[..n], shift);
        (q, rem)
    }

    /// Truncated division with remainder: `self = q * other + r`, `|r| < |other|`,
    /// and `r` has the sign of `self` (C semantics).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = Self::divrem_mag(&self.mag, &other.mag);
        let q_sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        (
            BigInt::from_mag(q_sign, q_mag),
            BigInt::from_mag(self.sign, r_mag),
        )
    }

    /// Greatest common divisor of the magnitudes; always non-negative.
    ///
    /// `gcd(0, 0) == 0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r.abs();
        }
        a
    }

    /// `self * 2^k`.
    pub fn shl(&self, k: u64) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        let limbs = (k / 64) as usize;
        let bits = (k % 64) as u32;
        let mut mag = vec![0u64; limbs];
        mag.extend(Self::shl_mag(&self.mag, bits));
        BigInt::from_mag(self.sign, mag)
    }

    /// Raises `self` to the power `exp`.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                if v == 0 {
                    BigInt::zero()
                } else {
                    BigInt { sign: Sign::Plus, mag: vec![v as u64] }
                }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
                let mag = (v as i128).unsigned_abs() as u64;
                if mag == 0 {
                    BigInt::zero()
                } else {
                    BigInt { sign, mag: vec![mag] }
                }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        BigInt::from_mag(sign, vec![lo, hi])
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> BigInt {
        BigInt::from_mag(Sign::Plus, vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => Self::cmp_mag(&self.mag, &other.mag),
            (Sign::Minus, Sign::Minus) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: self.sign.flip(),
                mag: self.mag.clone(),
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        if !self.is_zero() {
            self.sign = self.sign.flip();
        }
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            BigInt::from_mag(self.sign, BigInt::add_mag(&self.mag, &rhs.mag))
        } else {
            match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_mag(self.sign, BigInt::sub_mag(&self.mag, &rhs.mag))
                }
                Ordering::Less => BigInt::from_mag(rhs.sign, BigInt::sub_mag(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_mag(sign, BigInt::mul_mag(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt { (&self).$m(&rhs) }
        }
        impl $tr<&BigInt> for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: &BigInt) -> BigInt { (&self).$m(rhs) }
        }
        impl $tr<BigInt> for &BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt { self.$m(&rhs) }
        }
    )*};
}
forward_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_mag_limb(&mag, CHUNK);
            parts.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign == Sign::Minus {
            s.push('-');
        }
        s.push_str(&parts.last().unwrap().to_string());
        for p in parts.iter().rev().skip(1) {
            s.push_str(&format!("{p:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (Sign::Minus, &s[1..]),
            Some(b'+') => (Sign::Plus, &s[1..]),
            _ => (Sign::Plus, s),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { kind: "empty" });
        }
        if !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError {
                kind: "non-digit character",
            });
        }
        let mut acc = BigInt::zero();
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &digits[i..end];
            let v: u64 = chunk.parse().map_err(|_| ParseBigIntError {
                kind: "non-digit character",
            })?;
            let scale = BigInt::from(10u64).pow((end - i) as u32);
            acc = &acc * &scale + BigInt::from(v);
            i = end;
        }
        if sign == Sign::Minus {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_testkit::{gen, property};

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_properties() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert!(!z.is_positive());
        assert_eq!(z.signum(), 0);
        assert_eq!(z.to_string(), "0");
        assert_eq!(-z.clone(), z);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(2) - bi(3), bi(-1));
        assert_eq!(bi(-2) * bi(3), bi(-6));
        assert_eq!(bi(7) / bi(2), bi(3));
        assert_eq!(bi(7) % bi(2), bi(1));
        assert_eq!(bi(-7) / bi(2), bi(-3));
        assert_eq!(bi(-7) % bi(2), bi(-1));
        assert_eq!(bi(7) / bi(-2), bi(-3));
        assert_eq!(bi(7) % bi(-2), bi(1));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551615",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("1 2".parse::<BigInt>().is_err());
    }

    #[test]
    fn multi_limb_multiplication() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        assert_eq!(a, BigInt::one().shl(128));
        let sq = &a * &a;
        assert_eq!(sq, BigInt::one().shl(256));
    }

    #[test]
    fn knuth_division_edge_cases() {
        // Case that exercises the qhat correction loop.
        let a = BigInt::one().shl(192) - BigInt::one();
        let b = BigInt::one().shl(128) - BigInt::one();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(0).gcd(&bi(0)), bi(0));
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(10).pow(0), bi(1));
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(BigInt::one().shl(64).bits(), 65);
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(bi(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(0).to_f64(), 0.0);
        assert_eq!(bi(-3).to_f64(), -3.0);
        let big = BigInt::one().shl(100);
        assert_eq!(big.to_f64(), 2f64.powi(100));
    }

    property! {
        fn add_matches_i128(a in gen::i64_any(), b in gen::i64_any()) {
            assert_eq!(bi(a as i128) + bi(b as i128), bi(a as i128 + b as i128));
        }

        fn mul_matches_i128(a in gen::i64_any(), b in gen::i64_any()) {
            assert_eq!(bi(a as i128) * bi(b as i128), bi(a as i128 * b as i128));
        }

        fn div_rem_invariant(a in gen::i128_any(), b in gen::i128_any().filter(|v| *v != 0)) {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(&q * &bi(b) + &r, bi(a));
            assert!(r.abs() < bi(b).abs());
        }

        fn ord_matches_i128(a in gen::i128_any(), b in gen::i128_any()) {
            assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
        }

        fn string_round_trip(a in gen::i128_any()) {
            let v = bi(a);
            let s = v.to_string();
            assert_eq!(s.parse::<BigInt>().unwrap(), v);
            assert_eq!(s, a.to_string());
        }

        fn big_div_rem_invariant(
            a in gen::vec_of(gen::u64_any(), 1..6),
            b in gen::vec_of(gen::u64_any(), 1..4),
            neg_a in gen::bool_any(),
            neg_b in gen::bool_any(),
        ) {
            let a = BigInt::from_mag(if neg_a { Sign::Minus } else { Sign::Plus }, a);
            let b = BigInt::from_mag(if neg_b { Sign::Minus } else { Sign::Plus }, b);
            absolver_testkit::assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            assert_eq!(&q * &b + &r, a);
            assert!(r.abs() < b.abs());
        }

        fn gcd_divides_both(a in gen::i64_any(), b in gen::i64_any()) {
            let g = bi(a as i128).gcd(&bi(b as i128));
            if !g.is_zero() {
                assert!((bi(a as i128) % &g).is_zero());
                assert!((bi(b as i128) % &g).is_zero());
            } else {
                assert_eq!(a, 0);
                assert_eq!(b, 0);
            }
        }
    }
}
