//! Exact rational numbers over [`BigInt`].
//!
//! [`Rational`] is the coefficient domain of the simplex solvers in
//! `absolver-linear`: every value is kept fully reduced, so comparisons and
//! sign tests are exact no matter how many pivots have happened.
//!
//! ```
//! use absolver_num::Rational;
//!
//! let a: Rational = "3.5".parse().unwrap();
//! let b = Rational::new(7, 2);
//! assert_eq!(a, b);
//! assert_eq!((a / b).to_string(), "1");
//! ```

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(num, den) == 1`;
/// zero is `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The rational `0`.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        Rational::from_big(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num / den` from big integers, normalising the result.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_big(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        let g = num.gcd(&den);
        if !g.is_one() && !g.is_zero() {
            num = &num / &g;
            den = &den / &g;
        }
        if num.is_zero() {
            den = BigInt::one();
        }
        Rational { num, den }
    }

    /// Creates an integer rational.
    pub fn from_int(v: i64) -> Rational {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::from_big(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Nearest-`f64` approximation. Exact when numerator and denominator fit
    /// in the double mantissa, otherwise rounded by the two conversions.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational).
    ///
    /// Returns `None` for NaN and infinities.
    pub fn from_f64(v: f64) -> Option<Rational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let num = BigInt::from(mantissa) * BigInt::from(sign);
        Some(if exp >= 0 {
            Rational::from_big(num.shl(exp as u64), BigInt::one())
        } else {
            Rational::from_big(num, BigInt::one().shl((-exp) as u64))
        })
    }

    /// Raises to an integer power (negative exponents via [`Rational::recip`]).
    ///
    /// # Panics
    ///
    /// Panics if the value is zero and `exp < 0`.
    pub fn powi(&self, exp: i32) -> Rational {
        if exp >= 0 {
            Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().powi(-exp)
        }
    }

    /// Returns the smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Rational {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::from_big(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        Rational::from_big(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::from_big(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rational::from_big(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_binop {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational { (&self).$m(&rhs) }
        }
        impl $tr<&Rational> for Rational {
            type Output = Rational;
            fn $m(self, rhs: &Rational) -> Rational { (&self).$m(rhs) }
        }
        impl $tr<Rational> for &Rational {
            type Output = Rational;
            fn $m(self, rhs: Rational) -> Rational { self.$m(&rhs) }
        }
    )*};
}
forward_binop!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    kind: &'static str,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.kind)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-7/2"` and decimal notation `"3.5"` / `"-0.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |kind| ParseRationalError { kind };
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| bad("bad numerator"))?;
            let den: BigInt = d.trim().parse().map_err(|_| bad("bad denominator"))?;
            if den.is_zero() {
                return Err(bad("zero denominator"));
            }
            return Ok(Rational::from_big(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" || int_part == "+" {
                BigInt::zero()
            } else {
                int_part.parse().map_err(|_| bad("bad integer part"))?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad("bad fractional part"));
            }
            let frac: BigInt = frac_part.parse().map_err(|_| bad("bad fractional part"))?;
            let scale = BigInt::from(10u64).pow(frac_part.len() as u32);
            let mag = int.abs() * &scale + frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rational::from_big(num, scale));
        }
        let num: BigInt = s.trim().parse().map_err(|_| bad("bad integer"))?;
        Ok(Rational::from(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_testkit::{gen, property};

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rational::zero());
        assert_eq!(r(0, 5).denom(), &BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == r(1, 1));
        assert_eq!(r(3, 2).min(r(1, 2)), r(1, 2));
        assert_eq!(r(3, 2).max(r(1, 2)), r(3, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(6, 2).floor(), BigInt::from(3));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3".parse::<Rational>().unwrap(), r(3, 1));
        assert_eq!("-7/2".parse::<Rational>().unwrap(), r(-7, 2));
        assert_eq!("3.5".parse::<Rational>().unwrap(), r(7, 2));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), r(-1, 4));
        assert_eq!(".5".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("7.1".parse::<Rational>().unwrap(), r(71, 10));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
        assert!("1.2.3".parse::<Rational>().is_err());
    }

    #[test]
    fn from_f64_exact() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f64(-3.0).unwrap(), r(-3, 1));
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::zero());
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
        // 0.1 is not exactly 1/10 in binary; conversion must reflect that.
        assert_ne!(Rational::from_f64(0.1).unwrap(), r(1, 10));
    }

    #[test]
    fn powi_and_recip() {
        assert_eq!(r(2, 3).powi(2), r(4, 9));
        assert_eq!(r(2, 3).powi(-1), r(3, 2));
        assert_eq!(r(2, 3).powi(0), Rational::one());
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    fn display() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    property! {
        fn field_axioms(
            an in gen::ints(-1000i64..1000), ad in gen::ints(1i64..100),
            bn in gen::ints(-1000i64..1000), bd in gen::ints(1i64..100),
            cn in gen::ints(-1000i64..1000), cd in gen::ints(1i64..100),
        ) {
            let a = r(an, ad);
            let b = r(bn, bd);
            let c = r(cn, cd);
            assert_eq!(&a + &b, &b + &a);
            assert_eq!((&a + &b) + &c, &a + &(&b + &c));
            assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
            if !a.is_zero() {
                assert_eq!(&a * &a.recip(), Rational::one());
            }
        }

        fn from_f64_round_trips(v in gen::f64_in(-1.0e12, 1.0e12)) {
            let q = Rational::from_f64(v).unwrap();
            assert_eq!(q.to_f64(), v);
        }

        fn cmp_matches_f64(
            an in gen::ints(-10_000i64..10_000), ad in gen::ints(1i64..1000),
            bn in gen::ints(-10_000i64..10_000), bd in gen::ints(1i64..1000),
        ) {
            let a = r(an, ad);
            let b = r(bn, bd);
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if fa != fb {
                assert_eq!(a < b, fa < fb);
            }
        }

        fn floor_ceil_bracket(n in gen::ints(-10_000i64..10_000), d in gen::ints(1i64..1000)) {
            let q = r(n, d);
            let fl = Rational::from(q.floor());
            let ce = Rational::from(q.ceil());
            assert!(fl <= q && q <= ce);
            assert!(&ce - &fl <= Rational::one());
        }
    }
}
