//! Outward-rounded floating-point interval arithmetic.
//!
//! [`Interval`] underlies the nonlinear solver's branch-and-prune procedure:
//! every arithmetic operation returns an interval that is *guaranteed* to
//! contain the exact real result, by widening each computed endpoint one ulp
//! outward. That over-approximation is what makes "the constraint cannot be
//! satisfied anywhere in this box" a sound proof.
//!
//! ```
//! use absolver_num::Interval;
//!
//! let x = Interval::new(1.0, 2.0);
//! let y = Interval::new(-1.0, 3.0);
//! assert!((x + y).contains(4.9));
//! assert!(x.mul(y).encloses(Interval::new(-2.0, 6.0)));
//! ```

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed real interval `[lo, hi]` with `f64` endpoints.
///
/// The empty interval is represented canonically as `[+inf, -inf]`; every
/// constructor and operation preserves that canonical form. Endpoints may be
/// infinite (half-bounded or unbounded intervals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Widens a lower bound one ulp downward (no-op on infinities).
fn down(v: f64) -> f64 {
    if v.is_finite() {
        v.next_down()
    } else {
        v
    }
}

/// Widens an upper bound one ulp upward (no-op on infinities).
fn up(v: f64) -> f64 {
    if v.is_finite() {
        v.next_up()
    } else {
        v
    }
}

const SIGN_BIT: u64 = 1 << 63;
const INF_BITS: u64 = 0x7FF0_0000_0000_0000;

/// Rounds `v` toward `-inf` onto the grid of floats whose low `bits`
/// mantissa bits are zero. Infinities pass through; the result is never
/// NaN and never greater than `v`.
fn coarsen_down(v: f64, bits: u32) -> f64 {
    if !v.is_finite() || bits == 0 || bits > 52 {
        return v;
    }
    let mask = (1u64 << bits) - 1;
    let b = v.to_bits();
    let mag = b & !SIGN_BIT;
    if b & SIGN_BIT == 0 {
        // Positive (or +0): truncating the magnitude moves toward zero,
        // which is downward.
        f64::from_bits(mag & !mask)
    } else if mag & mask == 0 {
        v
    } else {
        // Negative: downward means growing the magnitude to the next
        // grid point. Saturate to -inf on exponent overflow.
        let stepped = (mag & !mask) + (mask + 1);
        if stepped >= INF_BITS {
            f64::NEG_INFINITY
        } else {
            f64::from_bits(SIGN_BIT | stepped)
        }
    }
}

/// Rounds `v` toward `+inf` onto the same grid as [`coarsen_down`].
fn coarsen_up(v: f64, bits: u32) -> f64 {
    -coarsen_down(-v, bits)
}

impl Interval {
    /// The empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The whole real line `(-inf, +inf)`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is NaN or if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Creates a degenerate point interval `[v, v]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// Creates `[lo, hi]`, returning [`Interval::EMPTY`] when `lo > hi`
    /// instead of panicking.
    pub fn checked(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// Lower endpoint (`+inf` for the empty interval).
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint (`-inf` for the empty interval).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Returns `true` if the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns `true` if the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Width `hi - lo` (`0` for points, `-inf` for empty, `+inf` if unbounded).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint; finite whenever the interval is non-empty, clamping
    /// half-bounded intervals to a large finite value.
    pub fn midpoint(&self) -> f64 {
        debug_assert!(!self.is_empty());
        if self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY {
            return 0.0;
        }
        if self.lo == f64::NEG_INFINITY {
            return if self.hi > 0.0 { 0.0 } else { self.hi - 1.0 };
        }
        if self.hi == f64::INFINITY {
            return if self.lo < 0.0 { 0.0 } else { self.lo + 1.0 };
        }
        let m = self.lo / 2.0 + self.hi / 2.0;
        m.clamp(self.lo, self.hi)
    }

    /// Returns `true` if `v` lies within the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if `other` is a subset of `self`.
    pub fn encloses(&self, other: Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Set intersection.
    pub fn intersect(&self, other: Interval) -> Interval {
        Interval::checked(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Convex hull (smallest interval containing both).
    pub fn hull(&self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Interval negation `[-hi, -lo]` (exact; no widening needed).
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Sound interval addition.
    pub fn add(&self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: down(self.lo + rhs.lo),
            hi: up(self.hi + rhs.hi),
        }
    }

    /// Sound interval subtraction.
    pub fn sub(&self, rhs: Interval) -> Interval {
        self.add(rhs.neg())
    }

    /// Sound interval multiplication.
    pub fn mul(&self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &a in &[self.lo, self.hi] {
            for &b in &[rhs.lo, rhs.hi] {
                // 0 * inf is NaN in IEEE; the correct interval product is 0.
                let p = if a == 0.0 || b == 0.0 { 0.0 } else { a * b };
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Interval {
            lo: down(lo),
            hi: up(hi),
        }
    }

    /// Sound interval division for denominators that do not contain zero.
    ///
    /// If `rhs` contains zero in its interior the quotient set is a union of
    /// two rays; use [`Interval::div_ext`] for that case. Here zero-straddling
    /// denominators conservatively yield [`Interval::ENTIRE`].
    pub fn div(&self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        if rhs.lo <= 0.0 && rhs.hi >= 0.0 {
            if rhs.lo == 0.0 && rhs.hi == 0.0 {
                return Interval::EMPTY;
            }
            let (a, b) = self.div_ext(rhs);
            return match (a, b) {
                (Some(x), Some(y)) => x.hull(y),
                (Some(x), None) | (None, Some(x)) => x,
                (None, None) => Interval::EMPTY,
            };
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &a in &[self.lo, self.hi] {
            for &b in &[rhs.lo, rhs.hi] {
                let q = if a == 0.0 { 0.0 } else { a / b };
                let q = if q.is_nan() { 0.0 } else { q };
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval {
            lo: down(lo),
            hi: up(hi),
        }
    }

    /// Extended division: the quotient as up to two intervals when the
    /// denominator straddles zero.
    ///
    /// Returns `(negative-side part, positive-side part)`; either may be
    /// `None`. Used by the HC4 contractor to propagate through `/`.
    pub fn div_ext(&self, rhs: Interval) -> (Option<Interval>, Option<Interval>) {
        if self.is_empty() || rhs.is_empty() || (rhs.lo == 0.0 && rhs.hi == 0.0) {
            return (None, None);
        }
        if rhs.lo > 0.0 || rhs.hi < 0.0 {
            return if rhs.hi < 0.0 {
                (Some(self.div(rhs)), None)
            } else {
                (None, Some(self.div(rhs)))
            };
        }
        // rhs contains zero with at least one side extending away from it.
        let neg_part = if rhs.lo < 0.0 {
            Some(self.div(Interval::new(rhs.lo, 0.0_f64.next_down())))
        } else {
            None
        };
        let pos_part = if rhs.hi > 0.0 {
            Some(self.div(Interval::new(0.0_f64.next_up(), rhs.hi)))
        } else {
            None
        };
        (neg_part, pos_part)
    }

    /// Sound integer power.
    pub fn powi(&self, n: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if n == 0 {
            return Interval::point(1.0);
        }
        if n < 0 {
            return Interval::point(1.0).div(self.powi(-n));
        }
        if n % 2 == 1 || self.lo >= 0.0 {
            let lo = self.lo.powi(n);
            let hi = self.hi.powi(n);
            Interval {
                lo: down(lo.min(hi)),
                hi: up(lo.max(hi)),
            }
        } else if self.hi <= 0.0 {
            let lo = self.hi.powi(n);
            let hi = self.lo.powi(n);
            Interval {
                lo: down(lo),
                hi: up(hi),
            }
        } else {
            // Straddles zero with even power: minimum is 0.
            let hi = self.lo.powi(n).max(self.hi.powi(n));
            Interval {
                lo: 0.0,
                hi: up(hi),
            }
        }
    }

    /// Sound square root; negative parts of the domain are clipped.
    ///
    /// Returns [`Interval::EMPTY`] if the interval is entirely negative.
    pub fn sqrt(&self) -> Interval {
        if self.is_empty() || self.hi < 0.0 {
            return Interval::EMPTY;
        }
        let lo = self.lo.max(0.0).sqrt();
        let hi = self.hi.sqrt();
        Interval {
            lo: down(lo).max(0.0),
            hi: up(hi),
        }
    }

    /// Sound exponential (monotone).
    pub fn exp(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: down(self.lo.exp()).max(0.0),
            hi: up(self.hi.exp()),
        }
    }

    /// Sound natural logarithm; non-positive parts of the domain are clipped.
    ///
    /// Returns [`Interval::EMPTY`] if the interval is entirely non-positive.
    pub fn ln(&self) -> Interval {
        if self.is_empty() || self.hi <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            down(self.lo.ln())
        };
        Interval {
            lo,
            hi: up(self.hi.ln()),
        }
    }

    /// Sound sine.
    pub fn sin(&self) -> Interval {
        self.trig(f64::sin, std::f64::consts::FRAC_PI_2)
    }

    /// Sound cosine.
    pub fn cos(&self) -> Interval {
        self.trig(f64::cos, 0.0)
    }

    /// Returns `true` if some point `at + 2kπ` (k ∈ ℤ) lies in `[lo, hi]`,
    /// allowing one ulp of slack on the period multiples.
    fn contains_periodic(lo: f64, hi: f64, at: f64) -> bool {
        use std::f64::consts::TAU;
        let k = ((lo - at) / TAU).ceil();
        let x = at + k * TAU;
        // Slack: the floating computation of x may land just outside.
        x <= hi || (at + (k - 1.0) * TAU) >= lo
    }

    /// Shared sin/cos enclosure: evaluates endpoints, then extends to ±1 if
    /// a critical point lies inside the interval. `max_at` is an x where
    /// the function attains its maximum `1` (minima are at `max_at + π`).
    fn trig(&self, f: fn(f64) -> f64, max_at: f64) -> Interval {
        use std::f64::consts::{PI, TAU};
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.width() >= TAU {
            return Interval::new(-1.0, 1.0);
        }
        let flo = f(self.lo);
        let fhi = f(self.hi);
        let mut lo = flo.min(fhi);
        let mut hi = flo.max(fhi);
        if Self::contains_periodic(self.lo, self.hi, max_at) {
            hi = 1.0;
        }
        if Self::contains_periodic(self.lo, self.hi, max_at + PI) {
            lo = -1.0;
        }
        Interval {
            lo: down(lo).max(-1.0),
            hi: up(hi).min(1.0),
        }
    }

    /// Outward quantization onto a coarse float grid: rounds `lo` toward
    /// `-inf` and `hi` toward `+inf` so that the low `bits` mantissa bits
    /// of both endpoints are zero. The result always encloses `self`, so
    /// any sound contraction computed on the quantized interval also
    /// applies to `self` — this is what makes the contraction cache
    /// reusable across nearby boxes without losing soundness.
    ///
    /// Quantization is idempotent: re-quantizing with the same `bits`
    /// is a no-op. `bits` above 52 (the full mantissa) or 0 leave the
    /// interval unchanged.
    pub fn quantize_outward(&self, bits: u32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: coarsen_down(self.lo, bits),
            hi: coarsen_up(self.hi, bits),
        }
    }

    /// Absolute-value image.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ENTIRE
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("[empty]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::add(&self, rhs)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::sub(&self, rhs)
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        Interval::mul(&self, rhs)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_testkit::{gen, property, Gen};

    #[test]
    fn construction_and_queries() {
        let i = Interval::new(-1.0, 2.0);
        assert!(i.contains(0.0) && i.contains(-1.0) && i.contains(2.0));
        assert!(!i.contains(2.5));
        assert_eq!(i.width(), 3.0);
        assert!(!i.is_empty());
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::point(3.0).is_point());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_bounds_panic() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(b), Interval::new(1.0, 2.0));
        assert_eq!(a.hull(b), Interval::new(0.0, 3.0));
        let c = Interval::new(5.0, 6.0);
        assert!(a.intersect(c).is_empty());
        assert_eq!(a.hull(Interval::EMPTY), a);
        assert_eq!(Interval::EMPTY.intersect(a), Interval::EMPTY);
    }

    #[test]
    fn midpoint_always_inside() {
        for iv in [
            Interval::new(1.0, 2.0),
            Interval::new(-1.0e300, 1.0e300),
            Interval::new(f64::NEG_INFINITY, 5.0),
            Interval::new(5.0, f64::INFINITY),
            Interval::ENTIRE,
        ] {
            let m = iv.midpoint();
            assert!(m.is_finite());
            assert!(iv.contains(m), "{m} not in {iv}");
        }
    }

    #[test]
    fn multiplication_signs() {
        let pos = Interval::new(2.0, 3.0);
        let neg = Interval::new(-3.0, -2.0);
        let mix = Interval::new(-1.0, 2.0);
        assert!(pos.mul(neg).encloses(Interval::new(-9.0, -4.0)));
        assert!(mix.mul(mix).encloses(Interval::new(-2.0, 4.0)));
        assert!(Interval::point(0.0).mul(Interval::ENTIRE).contains(0.0));
    }

    #[test]
    fn division_simple_and_extended() {
        let a = Interval::new(1.0, 2.0);
        assert!(a
            .div(Interval::new(2.0, 4.0))
            .encloses(Interval::new(0.25, 1.0)));
        // Denominator straddles zero: result splits into two rays.
        let (n, p) = a.div_ext(Interval::new(-1.0, 1.0));
        let n = n.unwrap();
        let p = p.unwrap();
        assert!(n.hi() <= -1.0 + 1e-9);
        assert!(p.lo() >= 1.0 - 1e-9);
        // Degenerate zero denominator.
        assert!(a.div(Interval::point(0.0)).is_empty());
        let (n, p) = a.div_ext(Interval::point(0.0));
        assert!(n.is_none() && p.is_none());
    }

    #[test]
    fn powers() {
        let m = Interval::new(-2.0, 3.0);
        assert!(m.powi(2).encloses(Interval::new(0.0, 9.0)));
        assert!(m.powi(3).encloses(Interval::new(-8.0, 27.0)));
        assert_eq!(m.powi(0), Interval::point(1.0));
        let n = Interval::new(-3.0, -2.0);
        assert!(n.powi(2).encloses(Interval::new(4.0, 9.0)));
    }

    #[test]
    fn transcendental_enclosures() {
        let i = Interval::new(0.0, 1.0);
        assert!(i.exp().encloses(Interval::new(1.0, std::f64::consts::E)));
        assert!(Interval::new(1.0, std::f64::consts::E).ln().contains(0.5));
        assert!(Interval::new(-1.0, 4.0)
            .sqrt()
            .encloses(Interval::new(0.0, 2.0)));
        assert!(Interval::new(-3.0, -1.0).sqrt().is_empty());
        assert!(Interval::new(-1.0, -0.5).ln().is_empty());
    }

    #[test]
    fn trig_critical_points() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // sin over [0, π] attains its max 1 at π/2.
        let s = Interval::new(0.0, PI).sin();
        assert!(s.contains(1.0));
        assert!(s.lo() <= 1e-9);
        // cos over [π/2, 3π/2] attains its min -1 at π.
        let c = Interval::new(FRAC_PI_2, 3.0 * FRAC_PI_2).cos();
        assert!(c.contains(-1.0));
        // Width ≥ 2π → [-1, 1].
        assert_eq!(Interval::new(0.0, 10.0).sin(), Interval::new(-1.0, 1.0));
    }

    #[test]
    fn abs_cases() {
        assert_eq!(Interval::new(1.0, 2.0).abs(), Interval::new(1.0, 2.0));
        assert_eq!(Interval::new(-2.0, -1.0).abs(), Interval::new(1.0, 2.0));
        assert_eq!(Interval::new(-2.0, 1.0).abs(), Interval::new(0.0, 2.0));
    }

    fn iv() -> Gen<Interval> {
        let lo = gen::f64_in(-1.0e6, 1.0e6);
        let hi = gen::f64_in(-1.0e6, 1.0e6);
        Gen::new(move |src| {
            let (a, b) = (lo.generate(src), hi.generate(src));
            Interval::new(a.min(b), a.max(b))
        })
    }

    property! {
        /// Soundness: for points x ∈ X, y ∈ Y, x∘y ∈ X∘Y.
        fn ops_contain_pointwise(a in iv(), b in iv(), ta in gen::f64_unit(), tb in gen::f64_unit()) {
            let x = a.lo() + ta * (a.hi() - a.lo());
            let y = b.lo() + tb * (b.hi() - b.lo());
            assert!(a.add(b).contains(x + y));
            assert!(a.sub(b).contains(x - y));
            assert!(a.mul(b).contains(x * y));
            if !b.contains(0.0) {
                assert!(a.div(b).contains(x / y));
            }
        }

        fn unary_contain_pointwise(a in iv(), t in gen::f64_unit()) {
            let x = a.lo() + t * (a.hi() - a.lo());
            assert!(a.powi(2).contains(x * x));
            assert!(a.powi(3).contains(x * x * x));
            assert!(a.sin().contains(x.sin()));
            assert!(a.cos().contains(x.cos()));
            assert!(a.abs().contains(x.abs()));
            if x >= 0.0 {
                assert!(a.sqrt().contains(x.sqrt()));
            }
            if x.abs() < 500.0 {
                assert!(a.exp().contains(x.exp()));
            }
            if x > 0.0 {
                assert!(a.ln().contains(x.ln()));
            }
        }

        fn intersect_is_subset(a in iv(), b in iv()) {
            let i = a.intersect(b);
            assert!(a.encloses(i));
            assert!(b.encloses(i));
            assert!(a.hull(b).encloses(a));
            assert!(a.hull(b).encloses(b));
        }

        fn div_ext_covers_division(a in iv(), b in iv(), ta in gen::f64_unit(), tb in gen::f64_unit()) {
            let x = a.lo() + ta * (a.hi() - a.lo());
            let y = b.lo() + tb * (b.hi() - b.lo());
            absolver_testkit::assume!(y != 0.0);
            let (n, p) = a.div_ext(b);
            let q = x / y;
            let inside = n.is_some_and(|i| i.contains(q)) || p.is_some_and(|i| i.contains(q));
            assert!(inside, "{q} escaped div_ext({a}, {b})");
        }

        /// Quantization soundness: the quantized interval encloses the
        /// original, is idempotent, and never produces NaN endpoints.
        fn quantize_outward_encloses(a in iv(), bits in gen::ints(0u32..=60)) {
            let q = a.quantize_outward(bits);
            assert!(!q.lo().is_nan() && !q.hi().is_nan());
            assert!(q.encloses(a), "quantize_outward({a}, {bits}) = {q} lost points");
            assert_eq!(q.quantize_outward(bits), q, "quantization must be idempotent");
        }
    }

    /// Adversarial endpoints: infinities, signed zeros, denormals, and
    /// extreme magnitudes mixed with ordinary values — the cases where
    /// IEEE rounding and special-value rules bite.
    fn adversarial_f64() -> Gen<f64> {
        const SPECIAL: [f64; 12] = [
            f64::NEG_INFINITY,
            -1e308,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            5e-324,
            f64::MIN_POSITIVE,
            1.0,
            1e16,
            1e308,
            f64::INFINITY,
        ];
        Gen::new(|src| {
            if gen::bool_any().generate(src) {
                SPECIAL[gen::ints(0usize..SPECIAL.len()).generate(src)]
            } else {
                gen::f64_in(-1e6, 1e6).generate(src)
            }
        })
    }

    fn adversarial_iv() -> Gen<Interval> {
        Gen::new(|src| {
            if gen::ints(0u32..8).generate(src) == 0 {
                return Interval::EMPTY;
            }
            let (a, b) = (
                adversarial_f64().generate(src),
                adversarial_f64().generate(src),
            );
            Interval::new(a.min(b), a.max(b))
        })
    }

    property! {
        #![cases = 512]

        /// Randomised companion to `edge_case_operations_never_panic_or_nan`:
        /// every operation on adversarial intervals (zero-straddling,
        /// empty, infinite, denormal endpoints) must neither panic nor
        /// produce a NaN endpoint, and empty inputs must propagate.
        fn adversarial_ops_never_panic_or_nan(a in adversarial_iv(), b in adversarial_iv()) {
            let no_nan = |iv: Interval, what: &str| {
                assert!(
                    !iv.lo().is_nan() && !iv.hi().is_nan(),
                    "{what} on {a}, {b} produced NaN endpoint {iv}"
                );
            };
            no_nan(a.add(b), "add");
            no_nan(a.sub(b), "sub");
            no_nan(a.mul(b), "mul");
            no_nan(a.div(b), "div");
            no_nan(a.intersect(b), "intersect");
            no_nan(a.hull(b), "hull");
            let (n, p) = a.div_ext(b);
            if let Some(n) = n {
                no_nan(n, "div_ext.neg");
            }
            if let Some(p) = p {
                no_nan(p, "div_ext.pos");
            }
            if a.is_empty() || b.is_empty() {
                assert!(a.add(b).is_empty() && a.sub(b).is_empty());
                assert!(a.mul(b).is_empty() && a.div(b).is_empty());
                assert!(a.intersect(b).is_empty());
                assert!(n.is_none() && p.is_none(), "div_ext on empty must yield nothing");
            }
            for (what, r) in [
                ("abs", a.abs()),
                ("sqrt", a.sqrt()),
                ("exp", a.exp()),
                ("ln", a.ln()),
                ("sin", a.sin()),
                ("cos", a.cos()),
                ("neg", a.neg()),
                ("powi2", a.powi(2)),
                ("powi-3", a.powi(-3)),
                ("powi7", a.powi(7)),
            ] {
                no_nan(r, what);
                if a.is_empty() {
                    assert!(r.is_empty(), "{what} must propagate empty");
                }
            }
            let q = a.quantize_outward(20);
            no_nan(q, "quantize_outward");
            assert!(q.encloses(a));
        }
    }

    /// Edge-case fuzz battery: adversarial intervals (zero-straddling,
    /// empty, infinite, denormal-adjacent) pushed through every operation.
    /// Any panic or NaN-shaped endpoint is a failure; empty inputs must
    /// propagate to empty (or a documented clipped result).
    #[test]
    fn edge_case_operations_never_panic_or_nan() {
        let specimens = [
            Interval::EMPTY,
            Interval::ENTIRE,
            Interval::point(0.0),
            Interval::new(-0.0, 0.0),
            Interval::new(-1.0, 1.0),
            Interval::new(f64::NEG_INFINITY, 0.0),
            Interval::new(0.0, f64::INFINITY),
            Interval::new(f64::NEG_INFINITY, -1.0),
            Interval::new(1.0, f64::INFINITY),
            Interval::new(f64::MIN, f64::MAX),
            Interval::new(-f64::MIN_POSITIVE, f64::MIN_POSITIVE),
            Interval::new(5e-324, 1e-300),
            Interval::new(-1e308, -1e300),
        ];
        let no_nan = |iv: Interval, what: &str, a: Interval, b: Interval| {
            assert!(
                !iv.lo().is_nan() && !iv.hi().is_nan(),
                "{what}({a}, {b}) produced NaN endpoint {iv}"
            );
        };
        for &a in &specimens {
            for &b in &specimens {
                no_nan(a.add(b), "add", a, b);
                no_nan(a.sub(b), "sub", a, b);
                no_nan(a.mul(b), "mul", a, b);
                no_nan(a.div(b), "div", a, b);
                no_nan(a.intersect(b), "intersect", a, b);
                no_nan(a.hull(b), "hull", a, b);
                let (n, p) = a.div_ext(b);
                if let Some(n) = n {
                    no_nan(n, "div_ext.neg", a, b);
                }
                if let Some(p) = p {
                    no_nan(p, "div_ext.pos", a, b);
                }
                // Empty absorbs through every binary op.
                if a.is_empty() || b.is_empty() {
                    assert!(a.add(b).is_empty());
                    assert!(a.sub(b).is_empty());
                    assert!(a.mul(b).is_empty());
                    assert!(a.div(b).is_empty());
                    assert!(a.intersect(b).is_empty());
                }
            }
            for op in [
                Interval::abs,
                Interval::sqrt,
                Interval::exp,
                Interval::ln,
                Interval::sin,
                Interval::cos,
                Interval::neg,
            ] {
                let r = op(&a);
                assert!(
                    !r.lo().is_nan() && !r.hi().is_nan(),
                    "unary op on {a} produced NaN endpoint {r}"
                );
                if a.is_empty() {
                    assert!(r.is_empty(), "empty must propagate through unary ops");
                }
            }
            for n in [-3, -2, -1, 0, 1, 2, 3, 4, 7, 8] {
                let r = a.powi(n);
                assert!(
                    !r.lo().is_nan() && !r.hi().is_nan(),
                    "powi({a}, {n}) produced NaN endpoint {r}"
                );
            }
            for bits in [0u32, 1, 8, 20, 32, 52, 53, 60] {
                let q = a.quantize_outward(bits);
                assert!(!q.lo().is_nan() && !q.hi().is_nan());
                assert!(q.encloses(a), "quantize_outward({a}, {bits}) = {q}");
            }
        }
        // Division by an interval straddling zero covers the whole line
        // (hull of two rays) but never errors.
        let straddle = Interval::new(-1.0, 1.0);
        let q = Interval::new(1.0, 2.0).div(straddle);
        assert!(!q.is_empty());
        assert!(q.lo() == f64::NEG_INFINITY && q.hi() == f64::INFINITY);
        // [0,0] denominator: empty quotient, not a crash.
        assert!(Interval::new(1.0, 2.0).div(Interval::point(0.0)).is_empty());
    }

    #[test]
    fn quantize_outward_boundaries() {
        // Negative endpoints round away from zero; positive toward zero.
        let a = Interval::new(-1.000001, 1.000001).quantize_outward(20);
        assert!(a.lo() <= -1.000001 && a.hi() >= 1.000001);
        // Saturation near the finite limit lands on infinity, not NaN.
        let big = Interval::new(-f64::MAX, f64::MAX).quantize_outward(40);
        assert!(big.encloses(Interval::new(-f64::MAX, f64::MAX)));
        assert!(!big.lo().is_nan() && !big.hi().is_nan());
        // A grid-aligned value is untouched.
        assert_eq!(
            Interval::new(-2.0, 4.0).quantize_outward(30),
            Interval::new(-2.0, 4.0)
        );
    }
}
