//! Numeric foundations for the ABsolver constraint-solving library.
//!
//! This crate provides the three number domains the solver stack is built
//! on, with no external dependencies:
//!
//! * [`BigInt`] — arbitrary-precision signed integers (sign + 64-bit limbs).
//! * [`Rational`] — exact rationals, the coefficient field of the simplex
//!   solvers in `absolver-linear`.
//! * [`Interval`] — outward-rounded `f64` intervals, the sound evaluation
//!   domain of the nonlinear branch-and-prune solver in
//!   `absolver-nonlinear`.
//!
//! # Example
//!
//! ```
//! use absolver_num::{BigInt, Interval, Rational};
//!
//! let big: BigInt = "340282366920938463463374607431768211456".parse()?;
//! assert_eq!(big, BigInt::one().shl(128));
//!
//! let q = Rational::new(7, 2) - Rational::new(1, 2);
//! assert!(q.is_integer());
//!
//! let iv = Interval::new(1.0, 2.0).mul(Interval::new(-1.0, 1.0));
//! assert!(iv.encloses(Interval::new(-2.0, 2.0)));
//! # Ok::<(), absolver_num::ParseBigIntError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod interval;
mod rational;

pub use bigint::{BigInt, ParseBigIntError};
pub use interval::Interval;
pub use rational::{ParseRationalError, Rational};
