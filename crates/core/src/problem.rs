//! The AB-satisfiability problem (paper Sec. 2).
//!
//! An *AB-problem* is a Boolean CNF skeleton together with *definitions*
//! binding Boolean variables to arithmetic constraints: asserting the
//! Boolean variable asserts the constraint(s), falsifying it asserts the
//! negation (with `¬(… = c)` splitting into `< c ∨ > c`). A single Boolean
//! variable may be bound to a *conjunction* of constraints — the paper's
//! running example binds variable 1 to `(i ≥ 0) ∧ (j ≥ 0)` via two `def`
//! lines. Variables of the arithmetic layer are typed `int` or `real`,
//! mirroring the `def int` / `def real` keywords of the input format.

use absolver_logic::{Assignment, Clause, Cnf, Lit, Tri, Var};
use absolver_nonlinear::{NlConstraint, VarId};
use absolver_num::{Interval, Rational};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Type of an arithmetic variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Ranges over the integers.
    Int,
    /// Ranges over the reals.
    Real,
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VarKind::Int => "int",
            VarKind::Real => "real",
        })
    }
}

/// An arithmetic variable: a name, a kind, and an optional search range.
#[derive(Debug, Clone, PartialEq)]
pub struct ArithVar {
    /// Source-level name.
    pub name: String,
    /// Integer or real.
    pub kind: VarKind,
    /// Domain used as the initial box by interval methods (defaults to the
    /// whole line). Not itself a constraint.
    pub range: Interval,
}

/// A definition: Boolean variable ⇔ conjunction of arithmetic constraints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AtomDef {
    /// The constraints (conjunction), over arithmetic variable ids.
    pub constraints: Vec<NlConstraint>,
}

/// An AB-problem: CNF skeleton + arithmetic definitions + variable table.
///
/// Construct programmatically via [`AbProblem::builder`] or parse the
/// extended DIMACS format via [`str::parse`] (see [`crate::parser`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AbProblem {
    pub(crate) cnf: Cnf,
    pub(crate) defs: BTreeMap<u32, AtomDef>,
    pub(crate) vars: Vec<ArithVar>,
    pub(crate) by_name: HashMap<String, VarId>,
}

impl AbProblem {
    /// Starts building a problem programmatically.
    pub fn builder() -> AbProblemBuilder {
        AbProblemBuilder::default()
    }

    /// The Boolean skeleton.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The definition attached to a Boolean variable, if any.
    pub fn def(&self, var: Var) -> Option<&AtomDef> {
        self.defs.get(&(var.index() as u32))
    }

    /// Iterates over `(Boolean var, definition)` pairs in variable order.
    pub fn defs(&self) -> impl Iterator<Item = (Var, &AtomDef)> {
        self.defs.iter().map(|(&v, d)| (Var::new(v), d))
    }

    /// Number of defined Boolean variables.
    pub fn num_defs(&self) -> usize {
        self.defs.len()
    }

    /// Total number of arithmetic constraints across all definitions (the
    /// paper's "(non-)linear expressions" count).
    pub fn num_constraints(&self) -> usize {
        self.defs.values().map(|d| d.constraints.len()).sum()
    }

    /// The arithmetic variable table.
    pub fn arith_vars(&self) -> &[ArithVar] {
        &self.vars
    }

    /// Looks up an arithmetic variable id by name.
    pub fn arith_var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The Boolean variables that carry definitions (the theory atoms).
    pub fn theory_vars(&self) -> Vec<Var> {
        self.defs.keys().map(|&v| Var::new(v)).collect()
    }

    /// Returns a copy of the problem with an extra clause — used e.g. to
    /// force a particular atom polarity when generating test cases.
    pub fn with_clause(&self, lits: impl IntoIterator<Item = Lit>) -> AbProblem {
        let mut copy = self.clone();
        copy.cnf.add_clause(lits.into_iter().collect::<Clause>());
        copy
    }

    /// Count of affine constraints (the paper's "#linear" column).
    pub fn num_linear(&self) -> usize {
        self.defs
            .values()
            .flat_map(|d| &d.constraints)
            .filter(|c| c.is_linear())
            .count()
    }

    /// Count of genuinely nonlinear constraints (the paper's "#nonlin."
    /// column).
    pub fn num_nonlinear(&self) -> usize {
        self.num_constraints() - self.num_linear()
    }
}

/// A model of an AB-problem: a Boolean assignment plus arithmetic values.
#[derive(Debug, Clone, PartialEq)]
pub struct AbModel {
    /// Truth values of the Boolean variables.
    pub boolean: Assignment,
    /// Values of the arithmetic variables.
    pub arith: ArithModel,
}

/// Arithmetic part of a model: exact when produced by the linear engine,
/// numeric when produced by the nonlinear engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ArithModel {
    /// Exact rational values (linear/integer path).
    Exact(Vec<Rational>),
    /// `f64` values within solver tolerance (nonlinear path).
    Numeric(Vec<f64>),
}

impl ArithModel {
    /// The value of variable `v` as `f64`.
    pub fn value_f64(&self, v: VarId) -> Option<f64> {
        match self {
            ArithModel::Exact(m) => m.get(v).map(Rational::to_f64),
            ArithModel::Numeric(m) => m.get(v).copied(),
        }
    }

    /// The exact value of variable `v`, when available.
    pub fn value_exact(&self, v: VarId) -> Option<&Rational> {
        match self {
            ArithModel::Exact(m) => m.get(v),
            ArithModel::Numeric(_) => None,
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        match self {
            ArithModel::Exact(m) => m.len(),
            ArithModel::Numeric(m) => m.len(),
        }
    }

    /// Returns `true` if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AbModel {
    /// Validates the model against `problem`: the CNF must evaluate to
    /// true, and every definition must be *consistent* — a true atom's
    /// constraints all hold, a false atom has at least one failing
    /// constraint (within `tol` on the numeric path).
    pub fn satisfies(&self, problem: &AbProblem, tol: f64) -> bool {
        if problem.cnf.eval(&self.boolean) != Tri::True {
            return false;
        }
        let point: Vec<f64> = (0..problem.vars.len())
            .map(|v| self.arith.value_f64(v).unwrap_or(f64::NAN))
            .collect();
        // True atoms may satisfy their constraints up to +tol; false atoms
        // are accepted unless every constraint holds even by a −tol margin
        // (numeric witnesses may sit arbitrarily close to a boundary).
        let holds = |c: &NlConstraint, slack: f64| match &self.arith {
            ArithModel::Exact(m) => {
                eval_exact(c, m).unwrap_or_else(|| c.eval_with_tol(&point, slack))
            }
            ArithModel::Numeric(_) => c.eval_with_tol(&point, slack),
        };
        for (var, def) in problem.defs() {
            match self.boolean.value(var) {
                Tri::True => {
                    if !def.constraints.iter().all(|c| holds(c, tol)) {
                        return false;
                    }
                }
                Tri::False => {
                    if def.constraints.iter().all(|c| holds(c, -tol)) {
                        return false;
                    }
                }
                Tri::Unknown => {}
            }
        }
        true
    }
}

/// Exact evaluation of a constraint when its expression is affine.
pub(crate) fn eval_exact(c: &NlConstraint, values: &[Rational]) -> Option<bool> {
    let (lin, k) = c.to_affine()?;
    let lhs = lin.eval(values) + k;
    Some(c.op.eval(&lhs, &c.rhs))
}

/// Incremental builder for [`AbProblem`].
///
/// ```
/// use absolver_core::{AbProblem, VarKind};
/// use absolver_linear::CmpOp;
/// use absolver_nonlinear::Expr;
/// use absolver_num::Rational;
///
/// let mut b = AbProblem::builder();
/// let i = b.arith_var("i", VarKind::Int);
/// let atom = b.atom(Expr::var(i), CmpOp::Ge, Rational::zero());
/// b.add_clause([atom.positive()]);
/// let problem = b.build();
/// assert_eq!(problem.num_defs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct AbProblemBuilder {
    cnf: Cnf,
    defs: BTreeMap<u32, AtomDef>,
    vars: Vec<ArithVar>,
    by_name: HashMap<String, VarId>,
}

impl AbProblemBuilder {
    /// Declares (or finds) an arithmetic variable.
    ///
    /// # Panics
    ///
    /// Panics if the name exists with a different kind.
    pub fn arith_var(&mut self, name: &str, kind: VarKind) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.vars[id].kind, kind,
                "variable `{name}` redeclared with different kind"
            );
            return id;
        }
        let id = self.vars.len();
        self.vars.push(ArithVar {
            name: name.to_string(),
            kind,
            range: Interval::ENTIRE,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Restricts the search range of an arithmetic variable (used as the
    /// initial box of interval methods; *not* itself a constraint).
    pub fn set_range(&mut self, var: VarId, range: Interval) {
        self.vars[var].range = self.vars[var].range.intersect(range);
    }

    /// Allocates a fresh plain Boolean variable (no definition).
    pub fn bool_var(&mut self) -> Var {
        self.cnf.fresh_var()
    }

    /// Number of Boolean variables allocated so far.
    pub fn num_bool_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Allocates a Boolean variable defined as `expr ⋈ rhs`.
    pub fn atom(
        &mut self,
        expr: absolver_nonlinear::Expr,
        op: absolver_linear::CmpOp,
        rhs: Rational,
    ) -> Var {
        self.atom_constraint(NlConstraint::new(expr, op, rhs))
    }

    /// Allocates a Boolean variable defined by an existing constraint.
    pub fn atom_constraint(&mut self, constraint: NlConstraint) -> Var {
        let var = self.cnf.fresh_var();
        self.define(var, constraint);
        var
    }

    /// Attaches a constraint to a Boolean variable. Repeated calls on the
    /// same variable build a *conjunction* — exactly like repeated
    /// `c def … <v> …` lines in the input format (paper Fig. 2).
    pub fn define(&mut self, var: Var, constraint: NlConstraint) {
        if let Some(max) = constraint.max_var() {
            assert!(
                max < self.vars.len(),
                "constraint mentions undeclared arithmetic variable {max}"
            );
        }
        while self.cnf.num_vars() <= var.index() {
            self.cnf.fresh_var();
        }
        self.defs
            .entry(var.index() as u32)
            .or_default()
            .constraints
            .push(constraint);
    }

    /// Adds a clause of literals.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.cnf.add_clause(lits.into_iter().collect::<Clause>());
    }

    /// Adds a unit clause asserting `lit`.
    pub fn require(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Finalises the problem.
    pub fn build(self) -> AbProblem {
        AbProblem {
            cnf: self.cnf,
            defs: self.defs,
            vars: self.vars,
            by_name: self.by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn builder_basics() {
        let mut b = AbProblem::builder();
        let i = b.arith_var("i", VarKind::Int);
        let j = b.arith_var("j", VarKind::Int);
        assert_eq!(b.arith_var("i", VarKind::Int), i); // idempotent
        let a1 = b.atom(Expr::var(i), CmpOp::Ge, q(0));
        let a2 = b.atom(Expr::var(i) + Expr::var(j), CmpOp::Lt, q(5));
        let free = b.bool_var();
        b.add_clause([a1.positive()]);
        b.add_clause([a2.negative(), free.positive()]);
        let p = b.build();
        assert_eq!(p.num_defs(), 2);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.cnf().num_vars(), 3);
        assert_eq!(p.arith_vars().len(), 2);
        assert_eq!(p.arith_var("j"), Some(j));
        assert_eq!(p.arith_var("zzz"), None);
        assert_eq!(p.num_linear(), 2);
        assert_eq!(p.num_nonlinear(), 0);
        assert!(p.def(a1).is_some());
        assert!(p.def(free).is_none());
        assert_eq!(p.theory_vars(), vec![a1, a2]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn redeclaration_with_other_kind_panics() {
        let mut b = AbProblem::builder();
        b.arith_var("x", VarKind::Int);
        b.arith_var("x", VarKind::Real);
    }

    #[test]
    #[should_panic(expected = "undeclared arithmetic variable")]
    fn atom_with_undeclared_var_panics() {
        let mut b = AbProblem::builder();
        b.atom(Expr::var(3), CmpOp::Ge, q(0));
    }

    #[test]
    fn conjunction_definitions() {
        // Paper Fig. 2: variable 1 ⇔ (i ≥ 0) ∧ (j ≥ 0).
        let mut b = AbProblem::builder();
        let i = b.arith_var("i", VarKind::Int);
        let j = b.arith_var("j", VarKind::Int);
        let v = b.atom(Expr::var(i), CmpOp::Ge, q(0));
        b.define(v, NlConstraint::new(Expr::var(j), CmpOp::Ge, q(0)));
        let p = b.build();
        assert_eq!(p.num_defs(), 1);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.def(v).unwrap().constraints.len(), 2);
    }

    #[test]
    fn nonlinear_counting() {
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let y = b.arith_var("y", VarKind::Real);
        b.atom(Expr::var(x) * Expr::var(y), CmpOp::Ge, q(1));
        b.atom(Expr::var(x) + Expr::var(y), CmpOp::Ge, q(1));
        let p = b.build();
        assert_eq!(p.num_linear(), 1);
        assert_eq!(p.num_nonlinear(), 1);
    }

    #[test]
    fn model_validation() {
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let a = b.atom(Expr::var(x), CmpOp::Ge, q(0));
        b.require(a.positive());
        let p = b.build();

        let good = AbModel {
            boolean: Assignment::from_bools([true]),
            arith: ArithModel::Exact(vec![q(3)]),
        };
        assert!(good.satisfies(&p, 1e-9));

        // Boolean var true but constraint violated → inconsistent.
        let bad = AbModel {
            boolean: Assignment::from_bools([true]),
            arith: ArithModel::Exact(vec![q(-1)]),
        };
        assert!(!bad.satisfies(&p, 1e-9));

        // Boolean assignment falsifies the CNF.
        let bad2 = AbModel {
            boolean: Assignment::from_bools([false]),
            arith: ArithModel::Exact(vec![q(3)]),
        };
        assert!(!bad2.satisfies(&p, 1e-9));
    }

    #[test]
    fn model_validation_checks_false_atoms() {
        // Clause (¬a ∨ b) with defs a: x ≥ 0, b: x ≥ 10.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let a = b.atom(Expr::var(x), CmpOp::Ge, q(0));
        let bb = b.atom(Expr::var(x), CmpOp::Ge, q(10));
        b.add_clause([a.negative(), bb.positive()]);
        let p = b.build();
        // a=false requires x < 0; claiming x = 5 is inconsistent.
        let m = AbModel {
            boolean: Assignment::from_bools([false, false]),
            arith: ArithModel::Exact(vec![q(5)]),
        };
        assert!(!m.satisfies(&p, 1e-9));
        // x = -1 makes a=false, b=false consistent.
        let m = AbModel {
            boolean: Assignment::from_bools([false, false]),
            arith: ArithModel::Exact(vec![q(-1)]),
        };
        assert!(m.satisfies(&p, 1e-9));
    }

    #[test]
    fn false_conjunction_atom_needs_one_failure() {
        // v ⇔ (x ≥ 0 ∧ x ≤ 10); v = false needs x < 0 or x > 10.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let v = b.atom(Expr::var(x), CmpOp::Ge, q(0));
        b.define(v, NlConstraint::new(Expr::var(x), CmpOp::Le, q(10)));
        b.require(v.negative());
        let p = b.build();
        let inside = AbModel {
            boolean: Assignment::from_bools([false]),
            arith: ArithModel::Exact(vec![q(5)]),
        };
        assert!(!inside.satisfies(&p, 1e-9));
        let outside = AbModel {
            boolean: Assignment::from_bools([false]),
            arith: ArithModel::Exact(vec![q(42)]),
        };
        assert!(outside.satisfies(&p, 1e-9));
    }

    #[test]
    fn numeric_model_tolerance() {
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let a = b.atom(Expr::var(x), CmpOp::Eq, q(1));
        b.require(a.positive());
        let p = b.build();
        let m = AbModel {
            boolean: Assignment::from_bools([true]),
            arith: ArithModel::Numeric(vec![1.0 + 1e-9]),
        };
        assert!(m.satisfies(&p, 1e-6));
        assert!(!m.satisfies(&p, 1e-12));
    }
}
