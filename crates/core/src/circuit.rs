//! The logical circuit at ABsolver's core (paper Sec. 4, Figs. 4 and 5).
//!
//! "ABsolver's core comprises a data structure for modelling an integrated
//! circuit where arithmetic and Boolean operations are represented as
//! gates taking either a single (e.g., negation), a pair (e.g., arithmetic
//! comparison), or an arbitrary number of inputs. The variables are then
//! seen as the input pins of a circuit, and the single output pin provides
//! the formula's truth value, which is either tt, ff, or ? indicating that
//! further treatment is necessary."
//!
//! [`Circuit`] is that structure: gates over the 3-valued domain
//! [`Tri`], with Boolean input pins and arithmetic *atom* pins whose truth
//! is supplied (or left `?`) by the theory solvers. [`Circuit::to_cnf`]
//! lowers a circuit to CNF by Tseitin transformation — the bridge the
//! model-conversion tool-chain (`absolver-model`) uses to produce
//! AB-problems from block diagrams.

use absolver_logic::{Clause, Cnf, Lit, Tri, Var};
use std::fmt;

/// Index of a gate within a [`Circuit`].
pub type NodeId = usize;

/// Error returned when evaluating or lowering a circuit whose output pin
/// was never selected with [`Circuit::set_output`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoOutputError;

impl fmt::Display for NoOutputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit has no output pin")
    }
}

impl std::error::Error for NoOutputError {}

/// A gate of the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// A constant truth value.
    Const(Tri),
    /// An external Boolean input pin (index into the input vector).
    BoolInput(usize),
    /// An arithmetic comparison atom (index into the atom vector); its
    /// value is `?` until a theory solver determines it.
    Atom(usize),
    /// Negation.
    Not(NodeId),
    /// Conjunction of arbitrarily many inputs.
    And(Vec<NodeId>),
    /// Disjunction of arbitrarily many inputs.
    Or(Vec<NodeId>),
    /// Exclusive or.
    Xor(NodeId, NodeId),
    /// Implication `a → b`.
    Implies(NodeId, NodeId),
    /// Equivalence `a ↔ b`.
    Iff(NodeId, NodeId),
}

/// A logical circuit over 3-valued gates with a single output pin.
///
/// ```
/// use absolver_core::{Circuit, Gate};
/// use absolver_logic::Tri;
///
/// // (in0 ∧ atom0) with the atom still undetermined.
/// let mut c = Circuit::new();
/// let i = c.bool_input(0);
/// let a = c.atom(0);
/// let and = c.and(vec![i, a]);
/// c.set_output(and);
/// assert_eq!(c.eval(&[Tri::True], &[Tri::Unknown]), Ok(Tri::Unknown));
/// assert_eq!(c.eval(&[Tri::False], &[Tri::Unknown]), Ok(Tri::False));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    output: Option<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates, in insertion order (children always precede parents).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output pin, if set.
    pub fn output(&self) -> Option<NodeId> {
        self.output
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        // Validate child references so circuits are acyclic by construction.
        let check = |n: &NodeId| assert!(*n < self.gates.len(), "gate references future node");
        match &gate {
            Gate::Not(a) => check(a),
            Gate::And(xs) | Gate::Or(xs) => xs.iter().for_each(check),
            Gate::Xor(a, b) | Gate::Implies(a, b) | Gate::Iff(a, b) => {
                check(a);
                check(b);
            }
            _ => {}
        }
        self.gates.push(gate);
        self.gates.len() - 1
    }

    /// Adds a constant gate.
    pub fn constant(&mut self, value: Tri) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Adds a Boolean input pin.
    pub fn bool_input(&mut self, index: usize) -> NodeId {
        self.push(Gate::BoolInput(index))
    }

    /// Adds an arithmetic atom pin.
    pub fn atom(&mut self, index: usize) -> NodeId {
        self.push(Gate::Atom(index))
    }

    /// Adds a negation gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// Adds an n-ary conjunction gate.
    pub fn and(&mut self, inputs: Vec<NodeId>) -> NodeId {
        self.push(Gate::And(inputs))
    }

    /// Adds an n-ary disjunction gate.
    pub fn or(&mut self, inputs: Vec<NodeId>) -> NodeId {
        self.push(Gate::Or(inputs))
    }

    /// Adds an exclusive-or gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// Adds an implication gate.
    pub fn implies(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Implies(a, b))
    }

    /// Adds an equivalence gate.
    pub fn iff(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Iff(a, b))
    }

    /// Selects the output pin.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_output(&mut self, node: NodeId) {
        assert!(node < self.gates.len(), "output node out of range");
        self.output = Some(node);
    }

    /// Evaluates the circuit under Boolean input values and atom truth
    /// values (missing entries read as `?`). Returns the output pin value;
    /// `?` means "further treatment is necessary, internally".
    ///
    /// # Errors
    ///
    /// Returns [`NoOutputError`] if no output pin is set.
    pub fn eval(&self, inputs: &[Tri], atoms: &[Tri]) -> Result<Tri, NoOutputError> {
        let out = self.output.ok_or(NoOutputError)?;
        let mut values: Vec<Tri> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate {
                Gate::Const(t) => *t,
                Gate::BoolInput(i) => inputs.get(*i).copied().unwrap_or(Tri::Unknown),
                Gate::Atom(i) => atoms.get(*i).copied().unwrap_or(Tri::Unknown),
                Gate::Not(a) => !values[*a],
                Gate::And(xs) => xs.iter().fold(Tri::True, |acc, &x| acc & values[x]),
                Gate::Or(xs) => xs.iter().fold(Tri::False, |acc, &x| acc | values[x]),
                Gate::Xor(a, b) => values[*a].xor(values[*b]),
                Gate::Implies(a, b) => values[*a].implies(values[*b]),
                Gate::Iff(a, b) => values[*a].iff(values[*b]),
            };
            values.push(v);
        }
        Ok(values[out])
    }

    /// Tseitin-transforms the circuit into CNF, asserting the output pin.
    ///
    /// Returns the CNF plus the Boolean variables allocated for each input
    /// pin and each atom pin — the latter are exactly the variables an
    /// [`crate::AbProblem`] definition should bind to the corresponding
    /// arithmetic constraint.
    ///
    /// # Errors
    ///
    /// Returns [`NoOutputError`] if no output pin is set.
    pub fn to_cnf(&self) -> Result<TseitinCnf, NoOutputError> {
        let out = self.output.ok_or(NoOutputError)?;
        let mut cnf = Cnf::new(0);
        let mut input_vars: Vec<(usize, Var)> = Vec::new();
        let mut atom_vars: Vec<(usize, Var)> = Vec::new();
        let mut node_lit: Vec<Lit> = Vec::with_capacity(self.gates.len());

        for gate in &self.gates {
            let lit = match gate {
                Gate::Const(t) => {
                    let v = cnf.fresh_var();
                    match t {
                        Tri::True => cnf.add_clause(Clause::new(vec![v.positive()])),
                        Tri::False => cnf.add_clause(Clause::new(vec![v.negative()])),
                        // An `?` constant is a free variable: both values
                        // remain possible, matching its 3-valued semantics.
                        Tri::Unknown => {}
                    }
                    v.positive()
                }
                Gate::BoolInput(i) => {
                    if let Some(&(_, v)) = input_vars.iter().find(|&&(j, _)| j == *i) {
                        v.positive()
                    } else {
                        let v = cnf.fresh_var();
                        input_vars.push((*i, v));
                        v.positive()
                    }
                }
                Gate::Atom(i) => {
                    if let Some(&(_, v)) = atom_vars.iter().find(|&&(j, _)| j == *i) {
                        v.positive()
                    } else {
                        let v = cnf.fresh_var();
                        atom_vars.push((*i, v));
                        v.positive()
                    }
                }
                Gate::Not(a) => !node_lit[*a],
                Gate::And(xs) => {
                    let y = cnf.fresh_var().positive();
                    let mut long = vec![y];
                    for &x in xs {
                        let lx = node_lit[x];
                        cnf.add_clause(Clause::new(vec![!y, lx]));
                        long.push(!lx);
                    }
                    cnf.add_clause(Clause::new(long));
                    y
                }
                Gate::Or(xs) => {
                    let y = cnf.fresh_var().positive();
                    let mut long = vec![!y];
                    for &x in xs {
                        let lx = node_lit[x];
                        cnf.add_clause(Clause::new(vec![y, !lx]));
                        long.push(lx);
                    }
                    cnf.add_clause(Clause::new(long));
                    y
                }
                Gate::Xor(a, b) => {
                    let y = cnf.fresh_var().positive();
                    let (la, lb) = (node_lit[*a], node_lit[*b]);
                    cnf.add_clause(Clause::new(vec![!y, la, lb]));
                    cnf.add_clause(Clause::new(vec![!y, !la, !lb]));
                    cnf.add_clause(Clause::new(vec![y, la, !lb]));
                    cnf.add_clause(Clause::new(vec![y, !la, lb]));
                    y
                }
                Gate::Implies(a, b) => {
                    let y = cnf.fresh_var().positive();
                    let (la, lb) = (node_lit[*a], node_lit[*b]);
                    cnf.add_clause(Clause::new(vec![!y, !la, lb]));
                    cnf.add_clause(Clause::new(vec![y, la]));
                    cnf.add_clause(Clause::new(vec![y, !lb]));
                    y
                }
                Gate::Iff(a, b) => {
                    let y = cnf.fresh_var().positive();
                    let (la, lb) = (node_lit[*a], node_lit[*b]);
                    cnf.add_clause(Clause::new(vec![!y, !la, lb]));
                    cnf.add_clause(Clause::new(vec![!y, la, !lb]));
                    cnf.add_clause(Clause::new(vec![y, la, lb]));
                    cnf.add_clause(Clause::new(vec![y, !la, !lb]));
                    y
                }
            };
            node_lit.push(lit);
        }
        // Assert the output pin.
        cnf.add_clause(Clause::new(vec![node_lit[out]]));
        input_vars.sort_unstable_by_key(|&(i, _)| i);
        atom_vars.sort_unstable_by_key(|&(i, _)| i);
        Ok(TseitinCnf {
            cnf,
            input_vars,
            atom_vars,
            output: node_lit[out],
        })
    }
}

/// Result of [`Circuit::to_cnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TseitinCnf {
    /// The equisatisfiable CNF (with the output asserted).
    pub cnf: Cnf,
    /// `(input pin index, CNF variable)` pairs, sorted by pin index.
    pub input_vars: Vec<(usize, Var)>,
    /// `(atom pin index, CNF variable)` pairs, sorted by pin index.
    pub atom_vars: Vec<(usize, Var)>,
    /// The literal representing the output pin (asserted as a unit).
    pub output: Lit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_sat::{SolveResult, Solver};

    const TRIS: [Tri; 3] = [Tri::True, Tri::False, Tri::Unknown];

    /// The subset of the paper's Fig. 1 example that Fig. 5 draws:
    /// OR( AND(atom_ige0, atom_jge0), NOT(atom_2ij) ).
    fn fig5_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a0 = c.atom(0);
        let a1 = c.atom(1);
        let a2 = c.atom(2);
        let and = c.and(vec![a0, a1]);
        let n = c.not(a2);
        let or = c.or(vec![and, n]);
        c.set_output(or);
        c
    }

    #[test]
    fn three_valued_evaluation() {
        let c = fig5_circuit();
        // All atoms unknown: output unknown ("further treatment").
        assert_eq!(c.eval(&[], &[]), Ok(Tri::Unknown));
        // atom2 false ⇒ NOT(atom2) true ⇒ OR short-circuits to tt.
        assert_eq!(
            c.eval(&[], &[Tri::Unknown, Tri::Unknown, Tri::False]),
            Ok(Tri::True)
        );
        // Both AND inputs true ⇒ tt regardless of atom2.
        assert_eq!(
            c.eval(&[], &[Tri::True, Tri::True, Tri::Unknown]),
            Ok(Tri::True)
        );
        // AND false and NOT false ⇒ ff.
        assert_eq!(
            c.eval(&[], &[Tri::False, Tri::True, Tri::True]),
            Ok(Tri::False)
        );
    }

    #[test]
    fn gate_semantics_match_tri_ops() {
        for a in TRIS {
            for b in TRIS {
                let mut c = Circuit::new();
                let ia = c.bool_input(0);
                let ib = c.bool_input(1);
                let and = c.and(vec![ia, ib]);
                let or = c.or(vec![ia, ib]);
                let xor = c.xor(ia, ib);
                let imp = c.implies(ia, ib);
                let iff = c.iff(ia, ib);
                let not = c.not(ia);
                for (node, expect) in [
                    (and, a & b),
                    (or, a | b),
                    (xor, a.xor(b)),
                    (imp, a.implies(b)),
                    (iff, a.iff(b)),
                    (not, !a),
                ] {
                    let mut cc = c.clone();
                    cc.set_output(node);
                    assert_eq!(
                        cc.eval(&[a, b], &[]),
                        Ok(expect),
                        "gate {node} on ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn constants_and_missing_pins() {
        let mut c = Circuit::new();
        let t = c.constant(Tri::True);
        let f = c.constant(Tri::False);
        let or = c.or(vec![t, f]);
        c.set_output(or);
        assert_eq!(c.eval(&[], &[]), Ok(Tri::True));
        // Missing input pins read as ?.
        let mut c2 = Circuit::new();
        let i9 = c2.bool_input(9);
        c2.set_output(i9);
        assert_eq!(c2.eval(&[], &[]), Ok(Tri::Unknown));
    }

    #[test]
    fn missing_output_is_an_error_not_a_panic() {
        // An output-less circuit is user-constructible (`Circuit::new()` is
        // public); both entry points must fail gracefully.
        let c = Circuit::new();
        assert_eq!(c.eval(&[], &[]), Err(NoOutputError));
        assert_eq!(c.to_cnf().unwrap_err(), NoOutputError);
        assert_eq!(NoOutputError.to_string(), "circuit has no output pin");
    }

    #[test]
    #[should_panic(expected = "references future node")]
    fn forward_reference_panics() {
        let mut c = Circuit::new();
        c.not(5);
    }

    /// Exhaustively checks Tseitin equisatisfiability: for every total
    /// assignment of pins, circuit-eval true ⇔ CNF satisfiable with those
    /// pin values.
    fn check_tseitin_exhaustive(c: &Circuit, num_inputs: usize, num_atoms: usize) {
        let t = c.to_cnf().unwrap();
        let pins = num_inputs + num_atoms;
        for bits in 0u32..(1 << pins) {
            let inputs: Vec<Tri> = (0..num_inputs)
                .map(|i| Tri::from(bits >> i & 1 == 1))
                .collect();
            let atoms: Vec<Tri> = (0..num_atoms)
                .map(|i| Tri::from(bits >> (num_inputs + i) & 1 == 1))
                .collect();
            let expect = c.eval(&inputs, &atoms).unwrap();

            let mut solver = Solver::from_cnf(&t.cnf);
            for &(pin, var) in &t.input_vars {
                let lit = if inputs[pin].is_true() {
                    var.positive()
                } else {
                    var.negative()
                };
                solver.add_clause(&[lit]);
            }
            for &(pin, var) in &t.atom_vars {
                let lit = if atoms[pin].is_true() {
                    var.positive()
                } else {
                    var.negative()
                };
                solver.add_clause(&[lit]);
            }
            let got = solver.solve();
            match expect {
                Tri::True => assert!(got.is_sat(), "bits {bits:b}: eval tt but CNF unsat"),
                Tri::False => {
                    assert_eq!(
                        got,
                        SolveResult::Unsat,
                        "bits {bits:b}: eval ff but CNF sat"
                    )
                }
                Tri::Unknown => unreachable!("total assignment cannot evaluate to ?"),
            }
        }
    }

    #[test]
    fn tseitin_equisatisfiable_fig5() {
        check_tseitin_exhaustive(&fig5_circuit(), 0, 3);
    }

    #[test]
    fn tseitin_equisatisfiable_all_gates() {
        let mut c = Circuit::new();
        let i0 = c.bool_input(0);
        let i1 = c.bool_input(1);
        let i2 = c.bool_input(2);
        let x = c.xor(i0, i1);
        let im = c.implies(x, i2);
        let f = c.iff(im, i0);
        let n = c.not(f);
        let o = c.or(vec![n, i2]);
        let a = c.and(vec![o, i0]);
        c.set_output(a);
        check_tseitin_exhaustive(&c, 3, 0);
    }

    #[test]
    fn tseitin_shares_pin_variables() {
        // The same input pin used twice maps to one CNF variable.
        let mut c = Circuit::new();
        let p1 = c.bool_input(0);
        let p2 = c.bool_input(0);
        let x = c.xor(p1, p2); // always false
        let n = c.not(x);
        c.set_output(n);
        let t = c.to_cnf().unwrap();
        assert_eq!(t.input_vars.len(), 1);
        check_tseitin_exhaustive(&c, 1, 0);
    }

    #[test]
    fn tseitin_constant_false_output_unsat() {
        let mut c = Circuit::new();
        let f = c.constant(Tri::False);
        c.set_output(f);
        let t = c.to_cnf().unwrap();
        let mut solver = Solver::from_cnf(&t.cnf);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }
}
