//! The solver interface layer (paper Sec. 4, Fig. 4).
//!
//! ABsolver's design goal is that "the most appropriate solver for a given
//! task can be integrated and used": the orchestrator talks to *trait
//! objects*, one list per domain, and tries each in order when the
//! preceding ones "failed to provide a decent result". This module defines
//! the three domain interfaces and the built-in implementations standing
//! in for the paper's external tools:
//!
//! | paper        | here                                                   |
//! |--------------|--------------------------------------------------------|
//! | zChaff       | [`CdclBoolean`] (incremental CDCL)                     |
//! | LSAT         | [`CdclBoolean`] — same engine, enumeration is native   |
//! | external restarts | [`RestartingBoolean`] (rebuilds the solver per model) |
//! | COIN LP      | [`SimplexLinear`] (exact-rational simplex)             |
//! | IPOPT        | [`PenaltyNonlinear`] (multistart penalty search)       |
//! | —            | [`IntervalNonlinear`] (rigorous branch-and-prune)      |
//! | —            | [`CascadeNonlinear`] (branch-and-prune, then penalty)  |

use absolver_linear::{check_conjunction_counted, AssertionStack, Feasibility, LinearConstraint};
use absolver_logic::{Assignment, Cnf, Lit};
use absolver_nonlinear::{
    branch_and_prune_stats, local_search, NlOptions, NlProblem, NlSearchStats, NlVerdict,
};
use absolver_sat::{SolveResult, Solver};
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Boolean domain
// ---------------------------------------------------------------------------

/// A Boolean solver usable by the orchestrating control loop.
///
/// `Send` is a supertrait so solver state (and everything holding it,
/// up to a whole [`crate::Session`]) can move between threads — the
/// `absolverd` worker pool hands warm sessions from worker to worker.
pub trait BooleanSolver: Send {
    /// Human-readable backend name (for statistics and logs).
    fn name(&self) -> &str;

    /// Replaces the loaded formula.
    fn load(&mut self, cnf: &Cnf);

    /// Adds a clause (e.g. a theory conflict); returns `false` if the
    /// formula became trivially unsatisfiable.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Produces a (total) model of the current formula, or `None` if
    /// unsatisfiable. Called repeatedly; blocking clauses added between
    /// calls steer the enumeration.
    fn next_model(&mut self) -> Option<Assignment>;

    /// Installs assumption literals applied to every subsequent
    /// [`BooleanSolver::next_model`] call (cube-and-conquer shards solve
    /// their cube this way). Returns `false` if the backend does not
    /// support assumptions; the caller then falls back to adding the
    /// assumptions as unit clauses.
    fn set_assumptions(&mut self, lits: &[Lit]) -> bool {
        let _ = lits;
        false
    }

    /// Ensures the backend knows variables `0..n` even before any clause
    /// mentions them. Incremental sessions call this when the problem
    /// grows between checks, so freshly declared (but not yet
    /// clause-constrained) atoms are still decided by the next model —
    /// matching what a from-scratch [`BooleanSolver::load`] would do.
    /// Backends that rebuild per query may ignore it.
    fn reserve_vars(&mut self, n: usize) {
        let _ = n;
    }
}

impl fmt::Debug for dyn BooleanSolver + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BooleanSolver({})", self.name())
    }
}

/// The default Boolean backend: an incremental CDCL solver (zChaff role).
/// Because the clause database survives between `next_model` calls, it also
/// covers the LSAT role (cheap all-models enumeration).
#[derive(Debug, Default)]
pub struct CdclBoolean {
    solver: Solver,
    phase_seed: Option<u64>,
    assumptions: Vec<Lit>,
}

impl CdclBoolean {
    /// Creates an empty backend.
    pub fn new() -> CdclBoolean {
        CdclBoolean::default()
    }

    /// Creates a backend whose decision phases are scrambled from `seed`
    /// on every `load` — the portfolio diversification knob.
    pub fn with_phase_seed(seed: u64) -> CdclBoolean {
        CdclBoolean {
            phase_seed: Some(seed),
            ..CdclBoolean::default()
        }
    }

    /// Access to the accumulated CDCL statistics.
    pub fn stats(&self) -> absolver_sat::SolverStats {
        self.solver.stats()
    }
}

impl BooleanSolver for CdclBoolean {
    fn name(&self) -> &str {
        "cdcl"
    }

    fn load(&mut self, cnf: &Cnf) {
        self.solver = Solver::from_cnf(cnf);
        if let Some(seed) = self.phase_seed {
            self.solver.scramble_phases(seed);
        }
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }

    fn next_model(&mut self) -> Option<Assignment> {
        let result = if self.assumptions.is_empty() {
            self.solver.solve()
        } else {
            self.solver.solve_under(&self.assumptions)
        };
        match result {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    fn set_assumptions(&mut self, lits: &[Lit]) -> bool {
        self.assumptions = lits.to_vec();
        true
    }

    fn reserve_vars(&mut self, n: usize) {
        self.solver.reserve_vars(n);
    }
}

/// The external-restart Boolean backend: rebuilds a fresh solver for every
/// query, as ABsolver must when the plugged-in SAT solver cannot continue
/// incrementally — "at the expense of the time required for restarting the
/// entire solving process externally" (Sec. 4). Used by the ablation bench.
#[derive(Debug, Default)]
pub struct RestartingBoolean {
    cnf: Cnf,
    extra: Vec<Vec<Lit>>,
    assumptions: Vec<Lit>,
}

impl RestartingBoolean {
    /// Creates an empty backend.
    pub fn new() -> RestartingBoolean {
        RestartingBoolean::default()
    }
}

impl BooleanSolver for RestartingBoolean {
    fn name(&self) -> &str {
        "restarting"
    }

    fn load(&mut self, cnf: &Cnf) {
        self.cnf = cnf.clone();
        self.extra.clear();
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.extra.push(lits.to_vec());
        true
    }

    fn next_model(&mut self) -> Option<Assignment> {
        // The entire solving process restarts: fresh solver, re-add all.
        let mut solver = Solver::from_cnf(&self.cnf);
        for clause in &self.extra {
            if !solver.add_clause(clause) {
                return None;
            }
        }
        let result = if self.assumptions.is_empty() {
            solver.solve()
        } else {
            solver.solve_under(&self.assumptions)
        };
        match result {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    fn set_assumptions(&mut self, lits: &[Lit]) -> bool {
        self.assumptions = lits.to_vec();
        true
    }
}

// ---------------------------------------------------------------------------
// Linear domain
// ---------------------------------------------------------------------------

/// Cumulative effort counters of a [`LinearBackend`], read by the
/// orchestrator's observability layer (counters only ever grow; the
/// orchestrator diffs snapshots to attribute per-run cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearBackendStats {
    /// Feasibility checks performed.
    pub checks: u64,
    /// Simplex pivots across all checks.
    pub pivots: u64,
    /// Wall-clock time spent minimising conflict cores.
    pub conflict_min_time: Duration,
}

/// A linear-arithmetic solver usable by the theory layer (COIN role).
pub trait LinearBackend: Send {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Decides feasibility of a conjunction, returning a witness or a
    /// conflicting subset (indices into the input).
    fn check(&mut self, constraints: &[LinearConstraint]) -> Feasibility;

    /// Cumulative effort counters. Backends without instrumentation
    /// report all-zero stats (the default).
    fn stats(&self) -> LinearBackendStats {
        LinearBackendStats::default()
    }

    /// Opens a persistent assertion-stack session over `num_vars`
    /// problem variables for incremental checking (delta assertion,
    /// warm-started re-checks, push/pop branch-and-bound). Backends that
    /// only support one-shot [`LinearBackend::check`] return `None` (the
    /// default); the theory layer then falls back to building a fresh
    /// tableau per check.
    fn make_stack(&self, num_vars: usize) -> Option<AssertionStack> {
        let _ = num_vars;
        None
    }
}

impl fmt::Debug for dyn LinearBackend + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinearBackend({})", self.name())
    }
}

/// Exact-rational simplex backend, optionally minimising conflicts with
/// the deletion filter (the paper's "smallest conflicting subset").
#[derive(Debug, Clone)]
pub struct SimplexLinear {
    minimize_conflicts: bool,
    stats: LinearBackendStats,
}

impl Default for SimplexLinear {
    fn default() -> Self {
        SimplexLinear::new()
    }
}

impl SimplexLinear {
    /// Creates the backend with conflict minimisation enabled.
    pub fn new() -> SimplexLinear {
        SimplexLinear {
            minimize_conflicts: true,
            stats: LinearBackendStats::default(),
        }
    }

    /// Creates the backend without the deletion-filter pass (ablation).
    pub fn without_minimization() -> SimplexLinear {
        SimplexLinear {
            minimize_conflicts: false,
            stats: LinearBackendStats::default(),
        }
    }

    /// Number of feasibility checks performed.
    pub fn checks(&self) -> u64 {
        self.stats.checks
    }
}

impl LinearBackend for SimplexLinear {
    fn name(&self) -> &str {
        "simplex"
    }

    fn check(&mut self, constraints: &[LinearConstraint]) -> Feasibility {
        self.stats.checks += 1;
        let (feasibility, pivots) = check_conjunction_counted(constraints);
        self.stats.pivots += pivots;
        match feasibility {
            Feasibility::Infeasible(core) if self.minimize_conflicts => {
                // Deletion filter over the already-small certificate.
                let started = Instant::now();
                let subset: Vec<LinearConstraint> =
                    core.iter().map(|&i| constraints[i].clone()).collect();
                let minimized = match absolver_linear::minimal_infeasible_subset(&subset) {
                    Some(mini) => {
                        let mut mapped: Vec<usize> = mini.into_iter().map(|i| core[i]).collect();
                        mapped.sort_unstable();
                        Feasibility::Infeasible(mapped)
                    }
                    None => Feasibility::Infeasible(core),
                };
                self.stats.conflict_min_time += started.elapsed();
                minimized
            }
            other => other,
        }
    }

    fn stats(&self) -> LinearBackendStats {
        self.stats
    }

    fn make_stack(&self, num_vars: usize) -> Option<AssertionStack> {
        Some(AssertionStack::new(num_vars, self.minimize_conflicts))
    }
}

// ---------------------------------------------------------------------------
// Nonlinear domain
// ---------------------------------------------------------------------------

/// Cumulative effort counters of a [`NonlinearBackend`] (counters only
/// ever grow; the orchestrator diffs snapshots to attribute per-run cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonlinearBackendStats {
    /// Branch-and-prune boxes explored across all solve calls.
    pub boxes_explored: u64,
    /// HC4 revise calls that narrowed (or emptied) a domain.
    pub hc4_contractions: u64,
    /// BC3 shaving passes that narrowed (or emptied) a domain.
    pub bc3_contractions: u64,
    /// Interval-Newton passes that narrowed (or emptied) a domain.
    pub newton_contractions: u64,
    /// Contraction-cache lookups answered without a revise.
    pub contraction_cache_hits: u64,
    /// Contraction-cache lookups that fell through to a revise.
    pub contraction_cache_misses: u64,
    /// Solves that resumed a non-empty persistent contraction cache
    /// (contraction work inherited from an earlier solve).
    pub contraction_cache_resumes: u64,
}

impl NonlinearBackendStats {
    fn absorb(&mut self, run: NlSearchStats) {
        self.boxes_explored += run.boxes_explored;
        self.hc4_contractions += run.hc4_contractions;
        self.bc3_contractions += run.bc3_contractions;
        self.newton_contractions += run.newton_contractions;
        self.contraction_cache_hits += run.contraction_cache_hits;
        self.contraction_cache_misses += run.contraction_cache_misses;
        self.contraction_cache_resumes += run.contraction_cache_resumes;
    }
}

/// A nonlinear solver usable by the theory layer (IPOPT role).
pub trait NonlinearBackend: Send {
    /// Human-readable backend name.
    fn name(&self) -> &str;

    /// Attempts to decide feasibility of the problem.
    fn solve(&mut self, problem: &NlProblem) -> NlVerdict;

    /// Installs a cooperative cancellation token and wall-clock deadline
    /// the engine should poll mid-search. Backends that cannot interrupt
    /// themselves may ignore this (the default); interruption then only
    /// happens between engine calls.
    fn set_interrupt(&mut self, cancel: Option<Arc<AtomicBool>>, deadline: Option<Instant>) {
        let _ = (cancel, deadline);
    }

    /// Cumulative effort counters. Backends without instrumentation
    /// report all-zero stats (the default).
    fn stats(&self) -> NonlinearBackendStats {
        NonlinearBackendStats::default()
    }
}

impl fmt::Debug for dyn NonlinearBackend + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NonlinearBackend({})", self.name())
    }
}

/// Rigorous interval branch-and-prune backend (can prove UNSAT).
///
/// The constructor installs a persistent contraction-cache handle (see
/// [`NlOptions::persistent_cache`]), so one backend instance — e.g. the
/// one a pooled session's orchestrator keeps alive — carries its
/// contraction cache across `solve` calls. Sound because cache entries
/// are keyed on stable interned constraint ids, not per-solve indices.
#[derive(Debug, Clone)]
pub struct IntervalNonlinear {
    /// Engine options.
    pub options: NlOptions,
    stats: NonlinearBackendStats,
}

impl Default for IntervalNonlinear {
    fn default() -> Self {
        IntervalNonlinear::with_options(NlOptions::default())
    }
}

impl IntervalNonlinear {
    /// A backend with explicit engine options. When contraction caching
    /// is enabled and no cross-solve cache home is set, one is created so
    /// the cache survives between solves.
    pub fn with_options(mut options: NlOptions) -> IntervalNonlinear {
        if options.contraction_cache && options.persistent_cache.is_none() {
            options.persistent_cache = Some(Arc::new(Mutex::new(None)));
        }
        IntervalNonlinear {
            options,
            stats: NonlinearBackendStats::default(),
        }
    }
}

impl NonlinearBackend for IntervalNonlinear {
    fn name(&self) -> &str {
        "interval"
    }

    fn solve(&mut self, problem: &NlProblem) -> NlVerdict {
        let (verdict, run) = branch_and_prune_stats(problem, &self.options);
        self.stats.absorb(run);
        verdict
    }

    fn set_interrupt(&mut self, cancel: Option<Arc<AtomicBool>>, deadline: Option<Instant>) {
        self.options.cancel = cancel;
        self.options.deadline = deadline;
    }

    fn stats(&self) -> NonlinearBackendStats {
        self.stats
    }
}

/// Multistart penalty local search backend — the IPOPT stand-in. Never
/// returns UNSAT (a numerical solver cannot prove absence of solutions).
#[derive(Debug, Clone, Default)]
pub struct PenaltyNonlinear {
    /// Engine options.
    pub options: NlOptions,
}

impl PenaltyNonlinear {
    /// A backend with explicit engine options.
    pub fn with_options(options: NlOptions) -> PenaltyNonlinear {
        PenaltyNonlinear { options }
    }
}

impl NonlinearBackend for PenaltyNonlinear {
    fn name(&self) -> &str {
        "penalty"
    }

    fn solve(&mut self, problem: &NlProblem) -> NlVerdict {
        match local_search(problem, &self.options) {
            Some(witness) => NlVerdict::Sat(witness),
            None => NlVerdict::Unknown,
        }
    }

    fn set_interrupt(&mut self, cancel: Option<Arc<AtomicBool>>, deadline: Option<Instant>) {
        self.options.cancel = cancel;
        self.options.deadline = deadline;
    }
}

/// The default nonlinear backend: branch-and-prune first, penalty search
/// as fallback.
///
/// Like [`IntervalNonlinear`], the constructor installs a persistent
/// contraction-cache handle so contraction work is shared across the
/// backend's `solve` calls — and, through the service's warm session
/// pool, across requests resubmitting overlapping problems.
#[derive(Debug, Clone)]
pub struct CascadeNonlinear {
    /// Engine options.
    pub options: NlOptions,
    stats: NonlinearBackendStats,
}

impl Default for CascadeNonlinear {
    fn default() -> Self {
        CascadeNonlinear::with_options(NlOptions::default())
    }
}

impl CascadeNonlinear {
    /// A backend with explicit engine options. When contraction caching
    /// is enabled and no cross-solve cache home is set, one is created so
    /// the cache survives between solves.
    pub fn with_options(mut options: NlOptions) -> CascadeNonlinear {
        if options.contraction_cache && options.persistent_cache.is_none() {
            options.persistent_cache = Some(Arc::new(Mutex::new(None)));
        }
        CascadeNonlinear {
            options,
            stats: NonlinearBackendStats::default(),
        }
    }
}

impl NonlinearBackend for CascadeNonlinear {
    fn name(&self) -> &str {
        "interval+penalty"
    }

    fn solve(&mut self, problem: &NlProblem) -> NlVerdict {
        let (verdict, run) = problem.solve_with_stats(&self.options);
        self.stats.absorb(run);
        verdict
    }

    fn set_interrupt(&mut self, cancel: Option<Arc<AtomicBool>>, deadline: Option<Instant>) {
        self.options.cancel = cancel;
        self.options.deadline = deadline;
    }

    fn stats(&self) -> NonlinearBackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_linear::{CmpOp, LinExpr};
    use absolver_nonlinear::{Expr, NlConstraint};
    use absolver_num::{Interval, Rational};

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn cdcl_backend_enumerates_with_blocking() {
        let mut b = CdclBoolean::new();
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause(&[1, 2]);
        b.load(&cnf);
        let mut count = 0;
        while let Some(m) = b.next_model() {
            count += 1;
            let blocking: Vec<Lit> = m
                .iter()
                .filter_map(|(v, t)| {
                    t.to_bool()
                        .map(|bit| if bit { v.negative() } else { v.positive() })
                })
                .collect();
            if !b.add_clause(&blocking) {
                break;
            }
            assert!(count <= 3, "more models than exist");
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn restarting_backend_agrees_with_cdcl() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause(&[1, 2]);
        cnf.add_dimacs_clause(&[-2, 3]);
        let run = |b: &mut dyn BooleanSolver| {
            b.load(&cnf);
            let mut n = 0;
            while let Some(m) = b.next_model() {
                n += 1;
                let blocking: Vec<Lit> = m
                    .iter()
                    .filter_map(|(v, t)| {
                        t.to_bool()
                            .map(|bit| if bit { v.negative() } else { v.positive() })
                    })
                    .collect();
                if blocking.is_empty() || !b.add_clause(&blocking) {
                    break;
                }
                assert!(n < 20);
            }
            n
        };
        let a = run(&mut CdclBoolean::new());
        let b = run(&mut RestartingBoolean::new());
        assert_eq!(a, b);
    }

    #[test]
    fn simplex_backend_minimizes() {
        let cs = vec![
            LinearConstraint::new(LinExpr::var(1), CmpOp::Ge, q(0)), // irrelevant
            LinearConstraint::new(LinExpr::var(0), CmpOp::Ge, q(5)),
            LinearConstraint::new(LinExpr::var(0), CmpOp::Le, q(3)),
        ];
        let mut with = SimplexLinear::new();
        match with.check(&cs) {
            Feasibility::Infeasible(core) => assert_eq!(core, vec![1, 2]),
            other => panic!("{other:?}"),
        }
        assert_eq!(with.checks(), 1);
        let mut without = SimplexLinear::without_minimization();
        match without.check(&cs) {
            Feasibility::Infeasible(core) => assert!(core.contains(&1) && core.contains(&2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nonlinear_backends_division_of_labour() {
        // Feasible circle: both find it.
        let mut feasible = NlProblem::new(1);
        feasible.add_constraint(NlConstraint::new(Expr::var(0).pow(2), CmpOp::Le, q(4)));
        feasible.bound_var(0, Interval::new(-10.0, 10.0));
        assert!(IntervalNonlinear::default().solve(&feasible).is_sat());
        assert!(PenaltyNonlinear::default().solve(&feasible).is_sat());
        // Infeasible: only the interval engine can *prove* it.
        let mut infeasible = NlProblem::new(1);
        infeasible.add_constraint(NlConstraint::new(Expr::var(0).pow(2), CmpOp::Le, q(-1)));
        infeasible.bound_var(0, Interval::new(-10.0, 10.0));
        assert_eq!(
            IntervalNonlinear::default().solve(&infeasible),
            NlVerdict::Unsat
        );
        assert_eq!(
            PenaltyNonlinear::default().solve(&infeasible),
            NlVerdict::Unknown
        );
        assert_eq!(
            CascadeNonlinear::default().solve(&infeasible),
            NlVerdict::Unsat
        );
    }
}
