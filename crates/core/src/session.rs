//! Persistent solve sessions: `push`/`pop`/`assert`/`check` across solves.
//!
//! A [`Session`] is the SMT-solver-style incremental front end the ROADMAP
//! calls for: one long-lived handle owning the Boolean engine, the simplex
//! assertion stack, the theory-verdict cache, and the interned definition
//! pool, so that successive `check()` calls reuse each other's work instead
//! of re-solving from scratch. Assertions are grouped into *frames* opened
//! by [`Session::push`] and discarded by [`Session::pop`].
//!
//! # Frame contract
//!
//! Everything a session asserts is **append-only** inside a frame: Boolean
//! variables, clauses, arithmetic variables, definitions, and range
//! tightenings only ever grow or narrow the problem. A frame therefore
//! snapshots just a handful of counters (variable/clause counts, lemma and
//! cache sequence watermarks) plus restore lists for the two non-monotone
//! mutations (extending an *existing* definition, tightening an *existing*
//! variable's range). `pop` is an undo, not a rebuild: it truncates the
//! append-only state back to the snapshot and replays the restore lists.
//!
//! # Soundness of retained lemmas
//!
//! Theory-conflict clauses ("lemmas") learned during `check()` are kept
//! across checks and replayed when the Boolean solver has to be reloaded.
//! A lemma is implied by the *definitions* of the Boolean variables it
//! mentions (and, when the problem has nonlinear constraints, by the
//! variable *ranges* in force when it was learned). It is discarded as
//! soon as any of those premises can change:
//!
//! * **popped variables** — a lemma mentioning a Boolean variable at an
//!   index at or above the popped frame's watermark dies with the frame
//!   (the index may be reallocated to an unrelated atom later);
//! * **definition changes** — extending the definition of an existing
//!   variable drops every lemma mentioning it (a *false* atom projects the
//!   negated definition, which extension *weakens*, so conflicts involving
//!   the negative literal are no longer implied — dropping both polarities
//!   is conservative but simple);
//! * **range widening** — popping a frame that tightened ranges drops, in
//!   range-sensitive (nonlinear) sessions, every lemma learned inside that
//!   frame. Tightening itself never invalidates a lemma: an infeasibility
//!   proof over a wider box covers every narrower box.
//!
//! The same discipline governs the theory-verdict cache, with one
//! refinement: cached **Sat** entries survive range *widening* (a witness
//! in a narrow box lies in every wider box) but are dropped on range
//! *tightening*, symmetrically to Unsat facts.
//!
//! The Boolean solver itself stays warm between checks whenever its clause
//! database is a sound image of the current frame: a pop, a definition
//! change, a reset, or a previous check that blocked undecidable
//! projections (`unknown_checks > 0` — those blocking clauses are *not*
//! implied) forces a reload from the problem CNF plus the surviving
//! lemmas.
//!
//! # Example
//!
//! ```
//! use absolver_core::{Session, VarKind};
//! use absolver_linear::CmpOp;
//! use absolver_nonlinear::Expr;
//! use absolver_num::Rational;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut s = Session::new();
//! let x = s.arith_var("x", VarKind::Real)?;
//! let ge = s.atom(Expr::var(x), CmpOp::Ge, Rational::from_int(0))?;
//! s.require(ge.positive());
//! assert!(s.check()?.is_sat());
//!
//! s.push();
//! let lt = s.atom(Expr::var(x), CmpOp::Lt, Rational::from_int(0))?;
//! s.require(lt.positive());
//! assert!(s.check()?.is_unsat());
//!
//! s.pop();
//! assert!(s.check()?.is_sat()); // the frame-2 contradiction is gone
//! # Ok(())
//! # }
//! ```

use crate::orchestrator::{Orchestrator, OrchestratorStats, Outcome, SessionSolveArgs, SolveError};
use crate::problem::{AbModel, AbProblem, ArithVar, VarKind};
use absolver_logic::{Clause, Lit, Var};
use absolver_nonlinear::{NlConstraint, VarId};
use absolver_num::{Interval, Rational};
use absolver_trace::TraceEvent;
use std::collections::HashSet;
use std::fmt;

/// Errors raised by [`Session`] mutations (the solve itself reports
/// through [`SolveError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `pop` was called with no open frame.
    NoFrame,
    /// An arithmetic variable was redeclared with a different kind.
    KindMismatch {
        /// The variable's name.
        name: String,
        /// The kind it was first declared with.
        declared: VarKind,
        /// The kind of the conflicting redeclaration.
        requested: VarKind,
    },
    /// A constraint mentions an arithmetic variable id that was never
    /// declared in this session.
    UndeclaredArithVar(VarId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoFrame => f.write_str("pop without a matching push"),
            SessionError::KindMismatch {
                name,
                declared,
                requested,
            } => write!(
                f,
                "variable `{name}` declared {declared} but redeclared {requested}"
            ),
            SessionError::UndeclaredArithVar(id) => {
                write!(f, "constraint mentions undeclared arithmetic variable {id}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// One open `push` frame: the append-only counters at open time plus the
/// restore lists for in-place mutations of pre-frame state.
#[derive(Debug, Default)]
struct Frame {
    /// `cnf.num_vars()` at push.
    bool_vars: usize,
    /// `arith_vars().len()` at push.
    arith_vars: usize,
    /// `cnf.len()` at push.
    clauses: usize,
    /// Orchestrator cache sequence at push — cache entries stamped later
    /// were created inside this frame.
    cache_seq: u64,
    /// Session event sequence at push — lemmas stamped later were learned
    /// inside this frame.
    session_seq: u64,
    /// Pre-frame definitions extended inside this frame:
    /// `(bool var index, constraint count to truncate back to)`.
    /// A count of 0 removes the definition entirely.
    def_restores: Vec<(u32, usize)>,
    /// Pre-frame variables whose range was tightened inside this frame:
    /// `(arith var id, range to restore)`.
    range_restores: Vec<(usize, Interval)>,
}

/// A retained theory lemma with the metadata its invalidation rules need.
#[derive(Debug)]
struct Lemma {
    clause: Vec<Lit>,
    /// Largest Boolean variable index mentioned.
    max_var: usize,
    /// Session sequence at learn time (frame attribution).
    seq: u64,
}

/// A persistent incremental solving session. See the [module docs]
/// (self) for the frame and soundness contract.
#[derive(Debug)]
pub struct Session {
    orc: Orchestrator,
    problem: AbProblem,
    frames: Vec<Frame>,
    lemmas: Vec<Lemma>,
    /// Monotone event counter ordering pushes, mutations, and lemma
    /// batches for the frame-attribution rules.
    seq: u64,
    /// The Boolean solver's clause database can no longer be trusted and
    /// must be reloaded (CNF + surviving lemmas) at the next check.
    boolean_dirty: bool,
    /// The orchestrator's interned definition pool is stale.
    defs_dirty: bool,
    /// Problem clauses already in the warm Boolean solver.
    synced_clauses: usize,
    checks: u64,
    cumulative: OrchestratorStats,
    last: Option<Outcome>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// Creates an empty session over [`Orchestrator::with_defaults`].
    pub fn new() -> Session {
        Session::with_orchestrator(Orchestrator::with_defaults())
    }

    /// Creates an empty session over a custom orchestrator (backend or
    /// option overrides). Note that preprocessing is *not* applied in
    /// session mode — checks run on the asserted problem as-is.
    pub fn with_orchestrator(orc: Orchestrator) -> Session {
        Session {
            orc,
            problem: AbProblem::default(),
            frames: Vec::new(),
            lemmas: Vec::new(),
            seq: 0,
            boolean_dirty: true,
            defs_dirty: true,
            synced_clauses: 0,
            checks: 0,
            cumulative: OrchestratorStats::default(),
            last: None,
        }
    }

    /// Creates a session pre-loaded with an existing problem (frame 0).
    pub fn from_problem(problem: &AbProblem) -> Session {
        let mut s = Session::new();
        s.problem = problem.clone();
        s
    }

    /// Creates a session over a custom orchestrator, pre-loaded with an
    /// existing problem (frame 0).
    pub fn from_problem_with(problem: &AbProblem, orc: Orchestrator) -> Session {
        let mut s = Session::with_orchestrator(orc);
        s.problem = problem.clone();
        s
    }

    /// The current problem (frame 0 assertions plus every open frame).
    pub fn problem(&self) -> &AbProblem {
        &self.problem
    }

    /// Number of open frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of `check()` calls so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of theory lemmas currently retained across checks.
    pub fn lemmas_retained(&self) -> usize {
        self.lemmas.len()
    }

    /// Statistics of the most recent `check()` alone.
    pub fn check_stats(&self) -> OrchestratorStats {
        self.orc.stats()
    }

    /// Statistics accumulated over every `check()` of this session.
    pub fn cumulative_stats(&self) -> OrchestratorStats {
        self.cumulative
    }

    /// The outcome of the most recent `check()`, or `None` if the session
    /// was mutated since (a stored model no longer describes the current
    /// frame).
    pub fn last_outcome(&self) -> Option<&Outcome> {
        self.last.as_ref()
    }

    /// The model of the most recent `check()`, if it was satisfiable and
    /// nothing was asserted or popped since.
    pub fn model(&self) -> Option<&AbModel> {
        self.last.as_ref().and_then(|o| o.model())
    }

    /// Sets (or clears) an absolute wall-clock deadline shared by every
    /// subsequent `check()`. Unlike the per-call
    /// [`crate::OrchestratorOptions::time_limit`], the deadline does not
    /// restart between checks, which makes it the right budget for a whole
    /// session script or a service request: once it passes, every further
    /// check returns [`Outcome::Unknown`] with
    /// [`OrchestratorStats::timed_out`] set.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.orc.set_deadline(deadline);
    }

    /// Installs (or clears) a cooperative cancellation token polled by
    /// subsequent `check()` calls. A cancelled check returns
    /// [`Outcome::Unknown`] with [`OrchestratorStats::cancelled`] set.
    pub fn set_cancel_token(
        &mut self,
        token: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) {
        self.orc.set_cancel_token(token);
    }

    /// The theory lemmas currently retained, as bare clauses. Every
    /// exported lemma is implied by the *definitions* (and, for nonlinear
    /// problems, the *ranges*) currently in force — see the module docs.
    /// The service layer harvests these from a retiring session to seed a
    /// future session over the same declarations.
    pub fn export_lemmas(&self) -> Vec<Vec<Lit>> {
        self.lemmas.iter().map(|l| l.clause.clone()).collect()
    }

    /// Seeds the session with lemmas exported from another session.
    ///
    /// # Soundness
    ///
    /// The caller must guarantee each clause is implied by this session's
    /// *current* definitions and ranges — in practice: it was exported by
    /// [`Session::export_lemmas`] from a session whose frame-0 declarations,
    /// definitions, and ranges are structurally identical to this one's.
    /// Clauses mentioning Boolean variables this session has not allocated
    /// are skipped (their indices could later be reallocated to unrelated
    /// atoms). Forces a Boolean reload at the next check so the seeds are
    /// replayed into the solver.
    pub fn import_lemmas(&mut self, lemmas: impl IntoIterator<Item = Vec<Lit>>) {
        self.seq += 1;
        let num_vars = self.problem.cnf.num_vars();
        let mut imported = 0u64;
        for clause in lemmas {
            if clause.is_empty() {
                continue;
            }
            let max_var = clause.iter().map(|l| l.var().index()).max().unwrap_or(0);
            if max_var >= num_vars {
                continue;
            }
            self.lemmas.push(Lemma {
                clause,
                max_var,
                seq: self.seq,
            });
            imported += 1;
        }
        if imported > 0 {
            self.boolean_dirty = true;
            self.invalidated();
        }
        self.trace(|| TraceEvent::new("session.lemma_import").field_u64("count", imported));
    }

    /// Whether lemma/cache validity depends on variable ranges — true as
    /// soon as any definition carries a non-affine constraint (the linear
    /// theory path never reads ranges).
    fn range_sensitive(&self) -> bool {
        self.problem.num_nonlinear() > 0
    }

    fn invalidated(&mut self) {
        self.last = None;
    }

    fn trace(&self, build: impl FnOnce() -> TraceEvent) {
        let sink = self.orc.trace_sink();
        if sink.enabled() {
            sink.emit(&build());
        }
    }

    // ------------------------------------------------------------------
    // Assertions
    // ------------------------------------------------------------------

    /// Declares (or finds) an arithmetic variable. Unlike
    /// [`crate::AbProblemBuilder::arith_var`] this reports kind clashes as
    /// an error instead of panicking.
    pub fn arith_var(&mut self, name: &str, kind: VarKind) -> Result<VarId, SessionError> {
        if let Some(&id) = self.problem.by_name.get(name) {
            let declared = self.problem.vars[id].kind;
            if declared != kind {
                return Err(SessionError::KindMismatch {
                    name: name.to_string(),
                    declared,
                    requested: kind,
                });
            }
            return Ok(id);
        }
        let id = self.problem.vars.len();
        self.problem.vars.push(ArithVar {
            name: name.to_string(),
            kind,
            range: Interval::ENTIRE,
        });
        self.problem.by_name.insert(name.to_string(), id);
        self.invalidated();
        Ok(id)
    }

    /// Tightens the search range of an arithmetic variable (intersection
    /// with the current range, exactly like repeated `c range` lines).
    pub fn assert_range(&mut self, var: VarId, range: Interval) -> Result<(), SessionError> {
        if var >= self.problem.vars.len() {
            return Err(SessionError::UndeclaredArithVar(var));
        }
        let old = self.problem.vars[var].range;
        let new = old.intersect(range);
        if new == old {
            return Ok(());
        }
        if let Some(f) = self.frames.last_mut() {
            if var < f.arith_vars && !f.range_restores.iter().any(|&(v, _)| v == var) {
                f.range_restores.push((var, old));
            }
        }
        self.problem.vars[var].range = new;
        if self.range_sensitive() {
            // Tightening preserves infeasibility proofs (lemmas, Unsat
            // entries) but a cached witness may fall outside the new box.
            self.orc.cache_retain(|_, _, is_sat| !is_sat);
        }
        self.seq += 1;
        self.invalidated();
        Ok(())
    }

    /// Allocates a fresh plain Boolean variable (no definition).
    pub fn bool_var(&mut self) -> Var {
        self.invalidated();
        self.problem.cnf.fresh_var()
    }

    /// Allocates a Boolean variable defined as `expr ⋈ rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UndeclaredArithVar`] when `expr` mentions an
    /// arithmetic variable id that was never declared in this session. (A
    /// fresh Boolean variable can never clash with an existing definition,
    /// so that is the only failure mode — and it must be an error, not a
    /// panic: a resident service feeds request-derived expressions here.)
    pub fn atom(
        &mut self,
        expr: absolver_nonlinear::Expr,
        op: absolver_linear::CmpOp,
        rhs: Rational,
    ) -> Result<Var, SessionError> {
        let constraint = NlConstraint::new(expr, op, rhs);
        // Validate before allocating so a rejected atom does not leak a
        // fresh Boolean variable into the problem.
        if let Some(max) = constraint.max_var() {
            if max >= self.problem.vars.len() {
                return Err(SessionError::UndeclaredArithVar(max));
            }
        }
        let var = self.problem.cnf.fresh_var();
        self.define(var, constraint)?;
        Ok(var)
    }

    /// Attaches a constraint to a Boolean variable. Repeated calls on the
    /// same variable build a *conjunction*; extending a variable that
    /// already carries a definition invalidates the lemmas and cache
    /// entries that mention it (see the module docs) and forces a Boolean
    /// reload at the next check.
    pub fn define(&mut self, var: Var, constraint: NlConstraint) -> Result<(), SessionError> {
        if let Some(max) = constraint.max_var() {
            if max >= self.problem.vars.len() {
                return Err(SessionError::UndeclaredArithVar(max));
            }
        }
        while self.problem.cnf.num_vars() <= var.index() {
            self.problem.cnf.fresh_var();
        }
        let key = var.index() as u32;
        let extending = self.problem.defs.contains_key(&key);
        if extending {
            let old_len = self.problem.defs[&key].constraints.len();
            if let Some(f) = self.frames.last_mut() {
                if var.index() < f.bool_vars && !f.def_restores.iter().any(|&(v, _)| v == key) {
                    f.def_restores.push((key, old_len));
                }
            }
            // Lemmas and cache entries involving this atom were derived
            // from the old definition; the negative projection is *weaker*
            // under the extension, so they are no longer implied.
            self.lemmas
                .retain(|l| !l.clause.iter().any(|lit| lit.var() == var));
            self.orc
                .cache_retain(|k, _, _| !k.iter().any(|lit| lit.var() == var));
            self.boolean_dirty = true;
        }
        self.problem
            .defs
            .entry(key)
            .or_default()
            .constraints
            .push(constraint);
        self.defs_dirty = true;
        self.seq += 1;
        self.invalidated();
        Ok(())
    }

    /// Adds a clause of literals.
    pub fn assert_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.problem
            .cnf
            .add_clause(lits.into_iter().collect::<Clause>());
        self.invalidated();
    }

    /// Adds a unit clause asserting `lit`.
    pub fn require(&mut self, lit: Lit) {
        self.assert_clause([lit]);
    }

    // ------------------------------------------------------------------
    // Frames
    // ------------------------------------------------------------------

    /// Opens a new assertion frame.
    pub fn push(&mut self) {
        self.seq += 1;
        self.frames.push(Frame {
            bool_vars: self.problem.cnf.num_vars(),
            arith_vars: self.problem.vars.len(),
            clauses: self.problem.cnf.len(),
            cache_seq: self.orc.cache_seq(),
            session_seq: self.seq,
            def_restores: Vec::new(),
            range_restores: Vec::new(),
        });
        self.trace(|| TraceEvent::new("session.push").field_u64("depth", self.frames.len() as u64));
    }

    /// Discards the most recent frame, undoing every assertion made since
    /// the matching [`Session::push`]. Lemmas and cache entries that
    /// depended on the popped state are discarded; frame-independent ones
    /// survive.
    pub fn pop(&mut self) -> Result<(), SessionError> {
        let f = self.frames.pop().ok_or(SessionError::NoFrame)?;
        self.problem.cnf.truncate(f.clauses, f.bool_vars);
        // Definitions added inside the frame sit at indices >= the
        // watermark; pre-frame definitions extended inside it are listed
        // in the restore list.
        self.problem.defs.retain(|&v, _| (v as usize) < f.bool_vars);
        for &(var, old_len) in &f.def_restores {
            if old_len == 0 {
                self.problem.defs.remove(&var);
            } else if let Some(def) = self.problem.defs.get_mut(&var) {
                def.constraints.truncate(old_len);
            }
        }
        for v in &self.problem.vars[f.arith_vars..] {
            self.problem.by_name.remove(&v.name);
        }
        self.problem.vars.truncate(f.arith_vars);
        for &(var, range) in &f.range_restores {
            self.problem.vars[var].range = range;
        }
        // Lemma retention (see the module docs): survive the pop iff every
        // premise survives it.
        let watermark = f.bool_vars;
        let restored: HashSet<u32> = f.def_restores.iter().map(|&(v, _)| v).collect();
        let widened = !f.range_restores.is_empty() && self.range_sensitive();
        let before = self.lemmas.len();
        self.lemmas.retain(|l| {
            l.max_var < watermark
                && !l
                    .clause
                    .iter()
                    .any(|lit| restored.contains(&(lit.var().index() as u32)))
                && !(widened && l.seq > f.session_seq)
        });
        let dropped = before - self.lemmas.len();
        self.orc.cache_retain(|key, seq, is_sat| {
            key.iter().all(|l| l.var().index() < watermark)
                && !key
                    .iter()
                    .any(|lit| restored.contains(&(lit.var().index() as u32)))
                // Widening back invalidates Unsat facts proved inside the
                // frame's tighter box; Sat witnesses still fit.
                && !(widened && !is_sat && seq > f.cache_seq)
        });
        self.boolean_dirty = true;
        self.defs_dirty = true;
        self.seq += 1;
        self.invalidated();
        self.trace(|| {
            TraceEvent::new("session.pop")
                .field_u64("depth", self.frames.len() as u64)
                .field_u64("lemmas_dropped", dropped as u64)
                .field_u64("lemmas_retained", self.lemmas.len() as u64)
        });
        Ok(())
    }

    /// Clears every assertion, frame, lemma, and cache entry. Cumulative
    /// statistics and the check counter survive.
    pub fn reset(&mut self) {
        self.problem = AbProblem::default();
        self.frames.clear();
        self.lemmas.clear();
        self.orc.cache_clear();
        self.boolean_dirty = true;
        self.defs_dirty = true;
        self.synced_clauses = 0;
        self.seq += 1;
        self.invalidated();
        self.trace(|| TraceEvent::new("session.reset"));
    }

    // ------------------------------------------------------------------
    // Checking
    // ------------------------------------------------------------------

    /// Decides the conjunction of every assertion currently in force.
    ///
    /// Per-check statistics are available from
    /// [`Session::check_stats`] afterwards; [`Session::cumulative_stats`]
    /// keeps the session-wide running totals.
    pub fn check(&mut self) -> Result<Outcome, SolveError> {
        let reload = self.boolean_dirty;
        let rebuild_defs = self.defs_dirty;
        let lemma_clauses: Vec<Vec<Lit>> = if reload {
            self.lemmas.iter().map(|l| l.clause.clone()).collect()
        } else {
            Vec::new()
        };
        let new_clauses: Vec<Clause> = if reload {
            Vec::new()
        } else {
            self.problem.cnf.clauses()[self.synced_clauses..].to_vec()
        };
        self.trace(|| {
            TraceEvent::new("session.check.start")
                .field_u64("check", self.checks + 1)
                .field_u64("depth", self.frames.len() as u64)
                .field("reload", if reload { "true" } else { "false" })
                .field_u64("lemmas_replayed", lemma_clauses.len() as u64)
        });
        let result = self.orc.session_solve(
            &self.problem,
            SessionSolveArgs {
                reload,
                rebuild_defs,
                lemmas: &lemma_clauses,
                new_clauses: &new_clauses,
            },
        );
        // Theory conflicts learned during the check are sound lemmas
        // regardless of how the check itself ended.
        self.seq += 1;
        for clause in self.orc.take_session_lemmas() {
            let max_var = clause.iter().map(|l| l.var().index()).max().unwrap_or(0);
            self.lemmas.push(Lemma {
                clause,
                max_var,
                seq: self.seq,
            });
        }
        let stats = self.orc.stats();
        self.cumulative.accumulate(&stats);
        self.checks += 1;
        self.defs_dirty = false;
        self.synced_clauses = self.problem.cnf.len();
        // Blocking clauses for *undecidable* projections are not implied
        // by anything — a check that produced any taints the warm clause
        // database. The same goes for a check that errored out mid-loop.
        self.boolean_dirty = stats.unknown_checks > 0 || result.is_err();
        self.trace(|| {
            TraceEvent::new("session.check.end")
                .field_u64("check", self.checks)
                .field(
                    "verdict",
                    match &result {
                        Ok(Outcome::Sat(_)) => "sat",
                        Ok(Outcome::Unsat) => "unsat",
                        Ok(Outcome::Unknown) => "unknown",
                        Err(_) => "error",
                    },
                )
                .field_u64("lemmas_retained", self.lemmas.len() as u64)
                .duration(stats.elapsed)
        });
        self.last = result.as_ref().ok().cloned();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn push_pop_restores_verdict() {
        let mut s = Session::new();
        let x = s.arith_var("x", VarKind::Int).unwrap();
        s.assert_range(x, Interval::new(-10.0, 10.0)).unwrap();
        let ge = s.atom(Expr::var(x), CmpOp::Ge, q(1)).unwrap();
        s.require(ge.positive());
        assert!(s.check().unwrap().is_sat());
        assert_eq!(s.depth(), 0);

        s.push();
        let le = s.atom(Expr::var(x), CmpOp::Le, q(0)).unwrap();
        s.require(le.positive());
        assert!(s.check().unwrap().is_unsat());

        s.pop().unwrap();
        assert!(s.check().unwrap().is_sat());
        assert_eq!(s.checks(), 3);
    }

    #[test]
    fn pop_without_push_errors() {
        let mut s = Session::new();
        assert_eq!(s.pop(), Err(SessionError::NoFrame));
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut s = Session::new();
        s.arith_var("x", VarKind::Int).unwrap();
        assert!(matches!(
            s.arith_var("x", VarKind::Real),
            Err(SessionError::KindMismatch { .. })
        ));
    }

    #[test]
    fn model_cleared_by_mutation() {
        let mut s = Session::new();
        let x = s.arith_var("x", VarKind::Real).unwrap();
        let ge = s.atom(Expr::var(x), CmpOp::Ge, q(2)).unwrap();
        s.require(ge.positive());
        assert!(s.check().unwrap().is_sat());
        assert!(s.model().is_some());
        s.push();
        // A bare push changes nothing, so the model stays valid…
        assert!(s.model().is_some());
        // …but any assertion invalidates it.
        let lt = s.atom(Expr::var(x), CmpOp::Lt, q(0)).unwrap();
        s.require(lt.positive());
        assert!(s.model().is_none());
    }

    #[test]
    fn warm_check_reuses_boolean_state() {
        let mut s = Session::new();
        let x = s.arith_var("x", VarKind::Real).unwrap();
        let a = s.atom(Expr::var(x), CmpOp::Ge, q(0)).unwrap();
        s.require(a.positive());
        assert!(s.check().unwrap().is_sat());
        // Re-checking the unchanged problem should hit the verdict cache.
        assert!(s.check().unwrap().is_sat());
        assert!(s.cumulative_stats().theory_cache_hits > 0);
    }

    #[test]
    fn def_extension_invalidates_dependent_lemmas() {
        let mut s = Session::new();
        let x = s.arith_var("x", VarKind::Real).unwrap();
        let a = s.atom(Expr::var(x), CmpOp::Ge, q(5)).unwrap();
        let b = s.atom(Expr::var(x), CmpOp::Le, q(3)).unwrap();
        s.assert_clause([a.positive()]);
        s.assert_clause([b.positive()]);
        assert!(s.check().unwrap().is_unsat());
        let before = s.lemmas_retained();
        // Extending `a`'s definition must drop lemmas mentioning it.
        s.define(a, NlConstraint::new(Expr::var(x), CmpOp::Ge, q(6)))
            .unwrap();
        assert!(s.lemmas_retained() <= before);
        assert!(s.check().unwrap().is_unsat());
    }

    #[test]
    fn reset_clears_assertions() {
        let mut s = Session::new();
        let x = s.arith_var("x", VarKind::Real).unwrap();
        let a = s.atom(Expr::var(x), CmpOp::Ge, q(1)).unwrap();
        let b = s.atom(Expr::var(x), CmpOp::Le, q(0)).unwrap();
        s.require(a.positive());
        s.require(b.positive());
        assert!(s.check().unwrap().is_unsat());
        s.reset();
        assert!(s.check().unwrap().is_sat()); // empty problem
        assert_eq!(s.checks(), 2);
    }
}
