//! Theory checking for a candidate Boolean assignment.
//!
//! Given the arithmetic constraints implied by a Boolean model (Sec. 1's
//! "linear constraint system", generalised to AB), this module decides
//! their conjunction:
//!
//! 1. the affine subset goes to the pluggable linear backend (simplex),
//!    extended here with branch-and-bound for `int`-typed variables and
//!    lazy case splits for *disequalities* (`¬(Σaᵢxᵢ = c)` becomes
//!    `< c ∨ > c` exactly as Sec. 1 prescribes, but split lazily instead
//!    of eagerly to avoid exponential branch enumeration);
//! 2. if genuinely nonlinear constraints are present, the full system is
//!    handed to the nonlinear backend, whose verdict is final — mirroring
//!    the paper's "if the output pin's value is not yet known, the
//!    nonlinear solver is called".
//!
//! Conflicts are reported as sets of *tags* (indices chosen by the caller,
//! in practice identifying the Boolean literals that induced each
//! constraint), so the orchestrator can turn them into blocking clauses.

use crate::backends::{LinearBackend, NonlinearBackend};
use crate::problem::{ArithModel, VarKind};
use absolver_linear::{AssertionStack, CmpOp, Feasibility, LinExpr, LinearConstraint, StackResult};
use absolver_nonlinear::{NlConstraint, NlProblem, NlVerdict};
use absolver_num::{Interval, Rational};
use absolver_trace::{TraceEvent, TraceSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One theory obligation: the constraint must hold (`Assert`) or must be
/// violated (`Refute`, arising from a false atom whose negation is not a
/// single comparison, i.e. equalities).
#[derive(Debug, Clone)]
pub struct TheoryItem {
    /// Caller-chosen tag identifying the origin (a Boolean literal).
    pub tag: usize,
    /// The constraint, shared with the orchestrator's interned pool so
    /// building the per-iteration obligation list never deep-clones
    /// expression trees.
    pub constraint: Arc<NlConstraint>,
    /// `true` to assert the constraint, `false` to assert its negation.
    pub positive: bool,
}

/// Verdict of a theory check.
#[derive(Debug, Clone, PartialEq)]
pub enum TheoryVerdict {
    /// Satisfiable; carries values for all arithmetic variables.
    Sat(ArithModel),
    /// Unsatisfiable; the tags of a conflicting subset of the items.
    Unsat(Vec<usize>),
    /// Could not be decided within budget.
    Unknown,
}

/// Budgets for the theory engines.
#[derive(Debug, Clone)]
pub struct TheoryBudget {
    /// Maximum branch-and-bound / disequality-split nodes on the linear path.
    pub max_nodes: usize,
    /// Maximum disequality splits on the nonlinear path.
    pub max_nl_splits: usize,
    /// Wall-clock deadline: past it, the theory engines abandon the check
    /// at their next node and report `Unknown`. This is what makes a
    /// `time_limit` a real deadline instead of a between-iterations hint —
    /// a single long branch-and-bound tree cannot blow past the wall clock.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token (parallel solving): once it reads
    /// `true`, the check is abandoned at the next node with `Unknown`.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for TheoryBudget {
    fn default() -> Self {
        TheoryBudget {
            max_nodes: 50_000,
            max_nl_splits: 16,
            deadline: None,
            cancel: None,
        }
    }
}

impl TheoryBudget {
    /// Returns `true` when the cancel token is set or the deadline has
    /// passed. Checked at every linear node and nonlinear split.
    pub fn interrupted(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

/// Wall-clock time a theory check spent in each phase. [`check`]
/// accumulates into this; the orchestrator reads it back to attribute
/// run time to simplex vs. the nonlinear engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TheoryTiming {
    /// Time in the linear phase (simplex + branch-and-bound + splits).
    pub linear: Duration,
    /// Time in the nonlinear phase (branch-and-prune + local search).
    pub nonlinear: Duration,
}

/// A persistent incremental linear session: the simplex assertion stack
/// plus the `(tag, constraint)` rows currently asserted on it. The
/// orchestrator owns one per solve call and threads it through
/// [`TheoryContext`]; consecutive checks diff their desired row list
/// against `base` and only push/pop the changed suffix (*delta
/// assertion*), so a check that shares a prefix with its predecessor
/// warm-starts from the previous feasible basis.
pub struct IncrementalLinear {
    stack: AssertionStack,
    base: Vec<(usize, LinearConstraint)>,
}

impl IncrementalLinear {
    /// Wraps a fresh assertion stack (see
    /// [`crate::backends::LinearBackend::make_stack`]).
    pub fn new(stack: AssertionStack) -> IncrementalLinear {
        IncrementalLinear {
            stack,
            base: Vec::new(),
        }
    }

    /// The underlying stack, for its effort counters (pivots, checks,
    /// warm starts, minimisation time).
    pub fn stack(&self) -> &AssertionStack {
        &self.stack
    }
}

impl std::fmt::Debug for IncrementalLinear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IncrementalLinear(rows={}, checks={})",
            self.base.len(),
            self.stack.checks()
        )
    }
}

/// Delta-assertion activity of the most recent linear phase, reported
/// through [`TheoryContext`] for the `phase.linear` trace event. All
/// fields stay zero/false on the from-scratch path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinActivity {
    /// The check ran on a warm assertion stack (not the session's first).
    pub warm: bool,
    /// Rows kept from the previous check (common prefix).
    pub reused: u64,
    /// Rows newly pushed for this check.
    pub pushed: u64,
}

/// The context a theory check runs in.
pub struct TheoryContext<'a> {
    /// Number of arithmetic variables.
    pub num_vars: usize,
    /// Kind of each variable.
    pub kinds: &'a [VarKind],
    /// Initial search box of each variable.
    pub ranges: &'a [Interval],
    /// Linear backends, tried in order.
    pub linear: &'a mut [Box<dyn LinearBackend>],
    /// Nonlinear backends, tried in order.
    pub nonlinear: &'a mut [Box<dyn NonlinearBackend>],
    /// Budgets.
    pub budget: TheoryBudget,
    /// Per-phase wall-clock accumulator, filled in by [`check`].
    pub timing: TheoryTiming,
    /// Trace sink for phase spans (`phase.linear` / `phase.nonlinear`).
    pub sink: Option<&'a dyn TraceSink>,
    /// Incremental linear session. When present, the linear phase runs
    /// delta assertion + warm-started checks on it instead of building a
    /// fresh tableau per check.
    pub incremental: Option<&'a mut IncrementalLinear>,
    /// Filled by the last linear phase: delta-assertion activity.
    pub lin_activity: LinActivity,
}

/// Normalised internal form of a query: asserted constraints plus affine
/// disequalities (negated equalities that stay lazy).
struct Normalised {
    /// `(tag, constraint)` — must hold; affine ones are split out below.
    /// `Arc`-shared with the caller's items: positive asserts never
    /// deep-clone the expression tree.
    nl_asserts: Vec<(usize, Arc<NlConstraint>)>,
    lin_asserts: Vec<(usize, LinearConstraint)>,
    /// `(tag, affine lhs, rhs)` — `lhs ≠ rhs` must hold.
    lin_diseqs: Vec<(usize, LinExpr, Rational)>,
    /// `(tag, constraint)` with `op == Eq` — `≠` obligations whose LHS is
    /// nonlinear.
    nl_diseqs: Vec<(usize, Arc<NlConstraint>)>,
    /// Whether any genuinely nonlinear assert exists.
    has_nonlinear: bool,
}

fn normalise(items: &[TheoryItem]) -> Normalised {
    let mut out = Normalised {
        nl_asserts: Vec::new(),
        lin_asserts: Vec::new(),
        lin_diseqs: Vec::new(),
        nl_diseqs: Vec::new(),
        has_nonlinear: false,
    };
    for item in items {
        let c = &item.constraint;
        if item.positive {
            push_assert(&mut out, item.tag, Arc::clone(c));
        } else {
            match c.op.negate() {
                Some(op) => {
                    push_assert(&mut out, item.tag, Arc::new(c.with_op(op)));
                }
                None => {
                    // ¬(lhs = rhs): a disequality, handled lazily.
                    match c.to_affine() {
                        Some((lin, k)) => {
                            out.lin_diseqs.push((item.tag, lin.clone(), &c.rhs - k));
                        }
                        None => {
                            out.nl_diseqs.push((item.tag, Arc::clone(c)));
                            out.has_nonlinear = true;
                        }
                    }
                }
            }
        }
    }
    out
}

fn push_assert(out: &mut Normalised, tag: usize, c: Arc<NlConstraint>) {
    match c.to_affine() {
        Some((lin, k)) => {
            let rhs = &c.rhs - k;
            out.lin_asserts
                .push((tag, LinearConstraint::new(lin.clone(), c.op, rhs)));
            out.nl_asserts.push((tag, c));
        }
        None => {
            out.has_nonlinear = true;
            out.nl_asserts.push((tag, c));
        }
    }
}

/// Decides the conjunction of theory items.
pub fn check(items: &[TheoryItem], ctx: &mut TheoryContext<'_>) -> TheoryVerdict {
    let norm = normalise(items);

    // Phase 1: the affine subset (always, as a cheap filter — and as the
    // complete decision procedure when nothing nonlinear is present).
    let lin_started = Instant::now();
    let lin_verdict = solve_linear(&norm, ctx);
    let lin_elapsed = lin_started.elapsed();
    ctx.timing.linear += lin_elapsed;
    if let Some(sink) = ctx.sink.filter(|s| s.enabled()) {
        sink.emit(
            &TraceEvent::new("phase.linear")
                .field(
                    "start",
                    if ctx.lin_activity.warm {
                        "warm"
                    } else {
                        "cold"
                    },
                )
                .field_u64("reused_rows", ctx.lin_activity.reused)
                .field_u64("pushed_rows", ctx.lin_activity.pushed)
                .duration(lin_elapsed),
        );
    }
    match (&lin_verdict, norm.has_nonlinear) {
        (LinOutcome::Unsat(tags), _) => return TheoryVerdict::Unsat(tags.clone()),
        (LinOutcome::Sat(model), false) => {
            return TheoryVerdict::Sat(ArithModel::Exact(pad(model.clone(), ctx.num_vars)));
        }
        (LinOutcome::Unknown, false) => return TheoryVerdict::Unknown,
        _ => {} // nonlinear present: fall through to phase 2
    }

    // Phase 2: full system to the nonlinear backend(s).
    let nl_started = Instant::now();
    let nl0 = nonlinear_stat_totals(ctx.nonlinear);
    let verdict = solve_nonlinear(&norm, ctx);
    let nl_elapsed = nl_started.elapsed();
    ctx.timing.nonlinear += nl_elapsed;
    if let Some(sink) = ctx.sink.filter(|s| s.enabled()) {
        sink.emit(&TraceEvent::new("phase.nonlinear").duration(nl_elapsed));
        // Aggregate per-contractor effort of this check, from the
        // backend-counter deltas.
        let nl1 = nonlinear_stat_totals(ctx.nonlinear);
        let deltas = [
            ("contract.hc4", nl1.hc4_contractions - nl0.hc4_contractions),
            ("contract.bc3", nl1.bc3_contractions - nl0.bc3_contractions),
            (
                "contract.newton",
                nl1.newton_contractions - nl0.newton_contractions,
            ),
            (
                "contract.cache_hit",
                nl1.contraction_cache_hits - nl0.contraction_cache_hits,
            ),
        ];
        for (kind, count) in deltas {
            if count > 0 {
                sink.emit(&TraceEvent::new(kind).field_u64("count", count));
            }
        }
    }
    verdict
}

/// Sum of the nonlinear backends' cumulative counters (for trace-event
/// deltas around one check).
fn nonlinear_stat_totals(
    backends: &[Box<dyn NonlinearBackend>],
) -> crate::backends::NonlinearBackendStats {
    let mut total = crate::backends::NonlinearBackendStats::default();
    for b in backends {
        let s = b.stats();
        total.hc4_contractions += s.hc4_contractions;
        total.bc3_contractions += s.bc3_contractions;
        total.newton_contractions += s.newton_contractions;
        total.contraction_cache_hits += s.contraction_cache_hits;
        total.contraction_cache_misses += s.contraction_cache_misses;
    }
    total
}

fn pad(mut v: Vec<Rational>, n: usize) -> Vec<Rational> {
    v.resize(n, Rational::zero());
    v
}

// ---------------------------------------------------------------------------
// Linear path: simplex + integer branch-and-bound + lazy disequalities
// ---------------------------------------------------------------------------

enum LinOutcome {
    Sat(Vec<Rational>),
    Unsat(Vec<usize>),
    Unknown,
}

fn solve_linear(norm: &Normalised, ctx: &mut TheoryContext<'_>) -> LinOutcome {
    ctx.lin_activity = LinActivity::default();
    if ctx.incremental.is_some() {
        // Temporarily move the session out so the recursion can borrow
        // both it and `ctx` independently.
        let inc = ctx.incremental.take().expect("checked above");
        let out = solve_linear_incremental(inc, norm, ctx);
        ctx.incremental = Some(inc);
        return out;
    }
    let mut constraints: Vec<LinearConstraint> =
        norm.lin_asserts.iter().map(|(_, c)| c.clone()).collect();
    let base_len = constraints.len();
    let tags: Vec<usize> = norm.lin_asserts.iter().map(|(t, _)| *t).collect();
    let mut nodes = ctx.budget.max_nodes;
    rec_linear(
        &mut constraints,
        base_len,
        &tags,
        &norm.lin_diseqs,
        ctx,
        &mut nodes,
    )
}

/// The incremental linear path: delta assertion against the session's
/// previous row set, then warm-started branch-and-bound on the stack.
fn solve_linear_incremental(
    inc: &mut IncrementalLinear,
    norm: &Normalised,
    ctx: &mut TheoryContext<'_>,
) -> LinOutcome {
    ctx.lin_activity.warm = inc.stack.checks() > 0;

    // Delta assertion: keep the longest common prefix of the previous
    // check's rows, pop everything past it, push only the new suffix.
    let desired = &norm.lin_asserts;
    let mut prefix = 0;
    while prefix < inc.base.len() && prefix < desired.len() && inc.base[prefix] == desired[prefix] {
        prefix += 1;
    }
    inc.stack.pop_to(prefix);
    inc.base.truncate(prefix);
    ctx.lin_activity.reused = prefix as u64;
    ctx.lin_activity.pushed = (desired.len() - prefix) as u64;
    for (tag, c) in &desired[prefix..] {
        match inc.stack.push(c) {
            Ok(_) => inc.base.push((*tag, c.clone())),
            Err(rows) => {
                // Assert-time conflict: `rows` are positions of accepted
                // base rows; the rejected constraint contributes its own
                // tag. The stack is unchanged, so `base` stays in sync.
                let mut tags: Vec<usize> = rows.iter().map(|&r| inc.base[r].0).collect();
                tags.push(*tag);
                tags.sort_unstable();
                tags.dedup();
                return LinOutcome::Unsat(tags);
            }
        }
    }

    let mut nodes = ctx.budget.max_nodes;
    rec_linear_inc(inc, &norm.lin_diseqs, ctx, &mut nodes)
}

/// Maps an unsat certificate (stack row positions) back to literal tags.
/// Rows past the base (branch constraints) widen the core to all base
/// tags, exactly like the from-scratch path (sound: supersets of an
/// unsat set stay unsat).
fn map_rows(inc: &IncrementalLinear, rows: &[usize]) -> Vec<usize> {
    let precise = rows.iter().all(|&r| r < inc.base.len());
    let mut t: Vec<usize> = if precise {
        rows.iter().map(|&r| inc.base[r].0).collect()
    } else {
        inc.base.iter().map(|(tag, _)| *tag).collect()
    };
    t.sort_unstable();
    t.dedup();
    t
}

fn rec_linear_inc(
    inc: &mut IncrementalLinear,
    diseqs: &[(usize, LinExpr, Rational)],
    ctx: &mut TheoryContext<'_>,
    nodes: &mut usize,
) -> LinOutcome {
    if *nodes == 0 || ctx.budget.interrupted() {
        return LinOutcome::Unknown;
    }
    *nodes -= 1;

    let model = match inc.stack.check() {
        StackResult::Unsat(rows) => return LinOutcome::Unsat(map_rows(inc, &rows)),
        StackResult::Sat => pad(inc.stack.model(), ctx.num_vars),
    };

    // Integrality: branch on the first int-typed variable with a
    // fractional value.
    for (v, kind) in ctx.kinds.iter().enumerate() {
        if *kind == VarKind::Int && !model[v].is_integer() {
            let below =
                LinearConstraint::new(LinExpr::var(v), CmpOp::Le, Rational::from(model[v].floor()));
            let above =
                LinearConstraint::new(LinExpr::var(v), CmpOp::Ge, Rational::from(model[v].ceil()));
            return branch_inc(inc, [below, above], diseqs, ctx, nodes, None);
        }
    }

    // Disequalities: find one the model violates (lhs = rhs exactly).
    for (tag, lin, rhs) in diseqs {
        if &lin.eval(&model) == rhs {
            let lt = LinearConstraint::new(lin.clone(), CmpOp::Lt, rhs.clone());
            let gt = LinearConstraint::new(lin.clone(), CmpOp::Gt, rhs.clone());
            return branch_inc(inc, [lt, gt], diseqs, ctx, nodes, Some(*tag));
        }
    }

    LinOutcome::Sat(model)
}

/// [`branch`], incrementally: each alternative is pushed onto the stack
/// (a few pivots on re-check, not a full solve) and popped before the
/// sibling runs; the stack is back at `mark` on every exit path.
fn branch_inc(
    inc: &mut IncrementalLinear,
    alternatives: [LinearConstraint; 2],
    diseqs: &[(usize, LinExpr, Rational)],
    ctx: &mut TheoryContext<'_>,
    nodes: &mut usize,
    diseq_tag: Option<usize>,
) -> LinOutcome {
    let mut conflict: Vec<usize> = Vec::new();
    let mark = inc.stack.len();
    for alt in alternatives {
        let out = match inc.stack.push(&alt) {
            Ok(_) => {
                let out = rec_linear_inc(inc, diseqs, ctx, nodes);
                inc.stack.pop_to(mark);
                out
            }
            // Assert-time conflict with rows already on the stack (the
            // failed push leaves the stack unchanged).
            Err(rows) => LinOutcome::Unsat(map_rows(inc, &rows)),
        };
        match out {
            LinOutcome::Sat(m) => return LinOutcome::Sat(m),
            LinOutcome::Unknown => return LinOutcome::Unknown,
            LinOutcome::Unsat(t) => conflict.extend(t),
        }
    }
    conflict.extend(diseq_tag);
    conflict.sort_unstable();
    conflict.dedup();
    LinOutcome::Unsat(conflict)
}

fn rec_linear(
    constraints: &mut Vec<LinearConstraint>,
    base_len: usize,
    tags: &[usize],
    diseqs: &[(usize, LinExpr, Rational)],
    ctx: &mut TheoryContext<'_>,
    nodes: &mut usize,
) -> LinOutcome {
    if *nodes == 0 || ctx.budget.interrupted() {
        return LinOutcome::Unknown;
    }
    *nodes -= 1;

    let feasibility = ctx
        .linear
        .first_mut()
        .map(|b| b.check(constraints))
        .unwrap_or_else(|| absolver_linear::check_conjunction(constraints));

    let model = match feasibility {
        Feasibility::Infeasible(core) => {
            // Map core members back to literal tags; branch constraints
            // (index ≥ base_len) widen the core to all base tags (sound:
            // supersets of an unsat set stay unsat).
            let precise = core.iter().all(|&i| i < base_len);
            let out = if precise {
                let mut t: Vec<usize> = core.iter().map(|&i| tags[i]).collect();
                t.sort_unstable();
                t.dedup();
                t
            } else {
                let mut t = tags.to_vec();
                t.sort_unstable();
                t.dedup();
                t
            };
            return LinOutcome::Unsat(out);
        }
        Feasibility::Feasible(m) => pad(m, ctx.num_vars),
    };

    // Integrality: branch on the first int-typed variable with a
    // fractional value.
    for (v, kind) in ctx.kinds.iter().enumerate() {
        if *kind == VarKind::Int && !model[v].is_integer() {
            let below =
                LinearConstraint::new(LinExpr::var(v), CmpOp::Le, Rational::from(model[v].floor()));
            let above =
                LinearConstraint::new(LinExpr::var(v), CmpOp::Ge, Rational::from(model[v].ceil()));
            return branch(
                constraints,
                [below, above],
                base_len,
                tags,
                diseqs,
                ctx,
                nodes,
                None,
            );
        }
    }

    // Disequalities: find one the model violates (lhs = rhs exactly).
    for (tag, lin, rhs) in diseqs {
        if &lin.eval(&model) == rhs {
            let lt = LinearConstraint::new(lin.clone(), CmpOp::Lt, rhs.clone());
            let gt = LinearConstraint::new(lin.clone(), CmpOp::Gt, rhs.clone());
            return branch(
                constraints,
                [lt, gt],
                base_len,
                tags,
                diseqs,
                ctx,
                nodes,
                Some(*tag),
            );
        }
    }

    LinOutcome::Sat(model)
}

/// Tries both branch constraints; SAT wins, two UNSATs merge cores (plus
/// the disequality's own tag when given), any Unknown propagates.
#[allow(clippy::too_many_arguments)]
fn branch(
    constraints: &mut Vec<LinearConstraint>,
    alternatives: [LinearConstraint; 2],
    base_len: usize,
    tags: &[usize],
    diseqs: &[(usize, LinExpr, Rational)],
    ctx: &mut TheoryContext<'_>,
    nodes: &mut usize,
    diseq_tag: Option<usize>,
) -> LinOutcome {
    let mut conflict: Vec<usize> = Vec::new();
    for alt in alternatives {
        constraints.push(alt);
        let out = rec_linear(constraints, base_len, tags, diseqs, ctx, nodes);
        constraints.pop();
        match out {
            LinOutcome::Sat(m) => return LinOutcome::Sat(m),
            LinOutcome::Unknown => return LinOutcome::Unknown,
            LinOutcome::Unsat(t) => conflict.extend(t),
        }
    }
    conflict.extend(diseq_tag);
    conflict.sort_unstable();
    conflict.dedup();
    LinOutcome::Unsat(conflict)
}

// ---------------------------------------------------------------------------
// Nonlinear path
// ---------------------------------------------------------------------------

fn solve_nonlinear(norm: &Normalised, ctx: &mut TheoryContext<'_>) -> TheoryVerdict {
    // All asserted constraints (linear ones included — the joint system
    // must be satisfied by one witness).
    let constraints: Vec<NlConstraint> =
        norm.nl_asserts.iter().map(|(_, c)| (**c).clone()).collect();
    let all_tags: Vec<usize> = norm
        .nl_asserts
        .iter()
        .map(|(t, _)| *t)
        .chain(norm.lin_diseqs.iter().map(|(t, _, _)| *t))
        .chain(norm.nl_diseqs.iter().map(|(t, _)| *t))
        .collect();
    let diseqs: Vec<(usize, NlConstraint)> = norm
        .lin_diseqs
        .iter()
        .map(|(t, lin, rhs)| {
            let expr = lin_to_expr(lin);
            (*t, NlConstraint::new(expr, CmpOp::Eq, rhs.clone()))
        })
        .chain(norm.nl_diseqs.iter().map(|(t, c)| (*t, (**c).clone())))
        .collect();

    let mut splits = ctx.budget.max_nl_splits;
    rec_nonlinear(constraints, &diseqs, &all_tags, ctx, &mut splits)
}

fn lin_to_expr(lin: &LinExpr) -> absolver_nonlinear::Expr {
    use absolver_nonlinear::Expr;
    let mut acc = Expr::zero();
    for (v, c) in lin.terms() {
        acc = acc + Expr::constant(c.clone()) * Expr::var(*v);
    }
    acc.simplify()
}

fn rec_nonlinear(
    constraints: Vec<NlConstraint>,
    diseqs: &[(usize, NlConstraint)],
    all_tags: &[usize],
    ctx: &mut TheoryContext<'_>,
    splits: &mut usize,
) -> TheoryVerdict {
    if ctx.budget.interrupted() {
        return TheoryVerdict::Unknown;
    }
    let mut problem = NlProblem::new(ctx.num_vars);
    for c in &constraints {
        problem.add_constraint(c.clone());
    }
    for v in 0..ctx.num_vars {
        problem.bound_var(v, ctx.ranges[v]);
    }

    let mut verdict = NlVerdict::Unknown;
    for backend in ctx.nonlinear.iter_mut() {
        verdict = backend.solve(&problem);
        if verdict != NlVerdict::Unknown {
            break; // "the preceding solvers failed to provide a decent result"
        }
    }

    match verdict {
        NlVerdict::Unsat => {
            let mut tags = all_tags.to_vec();
            tags.sort_unstable();
            tags.dedup();
            TheoryVerdict::Unsat(tags)
        }
        NlVerdict::Unknown => TheoryVerdict::Unknown,
        NlVerdict::Sat(witness) => {
            // Integer variables must come out integral on this path. Box
            // midpoints rarely land on integers even when an integral
            // solution exists, so snap them to the nearest integer and
            // re-verify the full system before giving up.
            let mut witness = witness;
            let mut snapped = false;
            for (v, kind) in ctx.kinds.iter().enumerate() {
                if *kind == VarKind::Int {
                    let rounded = witness[v].round();
                    if (witness[v] - rounded).abs() > 1e-6 {
                        witness[v] = rounded;
                        snapped = true;
                    }
                }
            }
            if snapped && !problem.is_satisfied(&witness, 1e-6) {
                return TheoryVerdict::Unknown;
            }
            // Check disequalities; split lazily on a violated one.
            for (tag, d) in diseqs {
                let lhs = d.lhs_f64(&witness);
                let rhs = d.rhs.to_f64();
                if (lhs - rhs).abs() <= 1e-9 {
                    if *splits == 0 {
                        return TheoryVerdict::Unknown;
                    }
                    *splits -= 1;
                    let mut any_unknown = false;
                    for op in [CmpOp::Lt, CmpOp::Gt] {
                        let mut branched = constraints.clone();
                        branched.push(d.with_op(op));
                        match rec_nonlinear(branched, diseqs, all_tags, ctx, splits) {
                            TheoryVerdict::Sat(m) => return TheoryVerdict::Sat(m),
                            TheoryVerdict::Unknown => any_unknown = true,
                            TheoryVerdict::Unsat(_) => {}
                        }
                    }
                    return if any_unknown {
                        TheoryVerdict::Unknown
                    } else {
                        let mut tags = all_tags.to_vec();
                        tags.push(*tag);
                        tags.sort_unstable();
                        tags.dedup();
                        TheoryVerdict::Unsat(tags)
                    };
                }
            }
            TheoryVerdict::Sat(ArithModel::Numeric(witness))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{CascadeNonlinear, SimplexLinear};
    use absolver_nonlinear::Expr;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn item(tag: usize, c: NlConstraint, positive: bool) -> TheoryItem {
        TheoryItem {
            tag,
            constraint: Arc::new(c),
            positive,
        }
    }

    fn run(items: &[TheoryItem], kinds: Vec<VarKind>, ranges: Vec<Interval>) -> TheoryVerdict {
        let mut linear: Vec<Box<dyn LinearBackend>> = vec![Box::new(SimplexLinear::new())];
        let mut nonlinear: Vec<Box<dyn NonlinearBackend>> =
            vec![Box::new(CascadeNonlinear::default())];
        let mut ctx = TheoryContext {
            num_vars: kinds.len(),
            kinds: &kinds,
            ranges: &ranges,
            linear: &mut linear,
            nonlinear: &mut nonlinear,
            budget: TheoryBudget::default(),
            timing: TheoryTiming::default(),
            sink: None,
            incremental: None,
            lin_activity: LinActivity::default(),
        };
        check(items, &mut ctx)
    }

    /// Like [`run`], but through a caller-owned incremental session.
    fn run_inc(
        inc: &mut IncrementalLinear,
        items: &[TheoryItem],
        kinds: Vec<VarKind>,
        ranges: Vec<Interval>,
    ) -> TheoryVerdict {
        let mut linear: Vec<Box<dyn LinearBackend>> = vec![Box::new(SimplexLinear::new())];
        let mut nonlinear: Vec<Box<dyn NonlinearBackend>> =
            vec![Box::new(CascadeNonlinear::default())];
        let mut ctx = TheoryContext {
            num_vars: kinds.len(),
            kinds: &kinds,
            ranges: &ranges,
            linear: &mut linear,
            nonlinear: &mut nonlinear,
            budget: TheoryBudget::default(),
            timing: TheoryTiming::default(),
            sink: None,
            incremental: Some(inc),
            lin_activity: LinActivity::default(),
        };
        check(items, &mut ctx)
    }

    fn reals(n: usize) -> (Vec<VarKind>, Vec<Interval>) {
        (
            vec![VarKind::Real; n],
            vec![Interval::new(-100.0, 100.0); n],
        )
    }

    fn ints(n: usize) -> (Vec<VarKind>, Vec<Interval>) {
        (vec![VarKind::Int; n], vec![Interval::new(-100.0, 100.0); n])
    }

    #[test]
    fn pure_linear_sat_and_unsat() {
        let (k, r) = reals(2);
        let c1 = NlConstraint::new(Expr::var(0) + Expr::var(1), CmpOp::Le, q(5));
        let c2 = NlConstraint::new(Expr::var(0), CmpOp::Ge, q(1));
        let sat = run(
            &[item(0, c1.clone(), true), item(1, c2.clone(), true)],
            k.clone(),
            r.clone(),
        );
        match sat {
            TheoryVerdict::Sat(ArithModel::Exact(m)) => {
                assert!(&m[0] + &m[1] <= q(5));
                assert!(m[0] >= q(1));
            }
            other => panic!("{other:?}"),
        }
        let c3 = NlConstraint::new(Expr::var(0), CmpOp::Lt, q(1));
        let unsat = run(&[item(0, c2, true), item(2, c3, true)], k, r);
        assert_eq!(unsat, TheoryVerdict::Unsat(vec![0, 2]));
    }

    #[test]
    fn negation_of_inequality() {
        // ¬(x ≥ 3) ≡ x < 3, combined with x ≥ 3 is unsat.
        let (k, r) = reals(1);
        let ge = NlConstraint::new(Expr::var(0), CmpOp::Ge, q(3));
        let verdict = run(&[item(7, ge.clone(), true), item(9, ge, false)], k, r);
        assert_eq!(verdict, TheoryVerdict::Unsat(vec![7, 9]));
    }

    #[test]
    fn lazy_disequality_split() {
        // 2 ≤ x ≤ 2 ∧ x ≠ 2 is unsat, and the conflict mentions the diseq.
        let (k, r) = reals(1);
        let le = NlConstraint::new(Expr::var(0), CmpOp::Le, q(2));
        let ge = NlConstraint::new(Expr::var(0), CmpOp::Ge, q(2));
        let eq = NlConstraint::new(Expr::var(0), CmpOp::Eq, q(2));
        let verdict = run(
            &[item(0, le, true), item(1, ge, true), item(2, eq, false)],
            k.clone(),
            r.clone(),
        );
        match verdict {
            TheoryVerdict::Unsat(tags) => assert!(tags.contains(&2)),
            other => panic!("{other:?}"),
        }
        // With slack (x ≤ 3) it is sat, and the witness avoids 2.
        let le3 = NlConstraint::new(Expr::var(0), CmpOp::Le, q(3));
        let ge2 = NlConstraint::new(Expr::var(0), CmpOp::Ge, q(2));
        let eq2 = NlConstraint::new(Expr::var(0), CmpOp::Eq, q(2));
        match run(
            &[item(0, le3, true), item(1, ge2, true), item(2, eq2, false)],
            k,
            r,
        ) {
            TheoryVerdict::Sat(ArithModel::Exact(m)) => assert_ne!(m[0], q(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integer_branch_and_bound() {
        // 2x = 3 has no integer solution (x = 3/2 over ℚ).
        let (k, r) = ints(1);
        let c = NlConstraint::new(Expr::int(2) * Expr::var(0), CmpOp::Eq, q(3));
        assert_eq!(
            run(&[item(0, c, true)], k, r),
            TheoryVerdict::Unsat(vec![0])
        );
        // 1 ≤ x ≤ 2 ∧ x ≠ 1 ∧ x ≠ 2 has no integer solution either.
        let (k, r) = ints(1);
        let items = vec![
            item(0, NlConstraint::new(Expr::var(0), CmpOp::Ge, q(1)), true),
            item(1, NlConstraint::new(Expr::var(0), CmpOp::Le, q(2)), true),
            item(2, NlConstraint::new(Expr::var(0), CmpOp::Eq, q(1)), false),
            item(3, NlConstraint::new(Expr::var(0), CmpOp::Eq, q(2)), false),
        ];
        match run(&items, k, r) {
            TheoryVerdict::Unsat(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integer_sat_gets_integral_witness() {
        // 2 ≤ 3x ≤ 7 → x = 1 or 2.
        let (k, r) = ints(1);
        let items = vec![
            item(
                0,
                NlConstraint::new(Expr::int(3) * Expr::var(0), CmpOp::Ge, q(2)),
                true,
            ),
            item(
                1,
                NlConstraint::new(Expr::int(3) * Expr::var(0), CmpOp::Le, q(7)),
                true,
            ),
        ];
        match run(&items, k, r) {
            TheoryVerdict::Sat(ArithModel::Exact(m)) => {
                assert!(m[0].is_integer());
                assert!(m[0] == q(1) || m[0] == q(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nonlinear_joint_with_linear() {
        // x ≥ 2 (linear) ∧ x·y = 1 (nonlinear) ∧ y ≥ 1 (linear): unsat
        // because y = 1/x ≤ 1/2 < 1.
        let (k, r) = reals(2);
        let items = vec![
            item(0, NlConstraint::new(Expr::var(0), CmpOp::Ge, q(2)), true),
            item(
                1,
                NlConstraint::new(Expr::var(0) * Expr::var(1), CmpOp::Eq, q(1)),
                true,
            ),
            item(2, NlConstraint::new(Expr::var(1), CmpOp::Ge, q(1)), true),
        ];
        match run(&items, k.clone(), r.clone()) {
            TheoryVerdict::Unsat(tags) => assert_eq!(tags, vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
        // Dropping the y-bound makes it satisfiable.
        match run(&items[..2], k, r) {
            TheoryVerdict::Sat(ArithModel::Numeric(w)) => {
                assert!((w[0] * w[1] - 1.0).abs() < 1e-5);
                assert!(w[0] >= 2.0 - 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nonlinear_negation() {
        // ¬(x² ≤ 4) ≡ x² > 4 with −1 ≤ x ≤ 1: unsat.
        let (k, r) = reals(1);
        let items = vec![
            item(0, NlConstraint::new(Expr::var(0), CmpOp::Ge, q(-1)), true),
            item(1, NlConstraint::new(Expr::var(0), CmpOp::Le, q(1)), true),
            item(
                2,
                NlConstraint::new(Expr::var(0).pow(2), CmpOp::Le, q(4)),
                false,
            ),
        ];
        match run(&items, k, r) {
            TheoryVerdict::Unsat(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incremental_session_agrees_with_scratch() {
        // One persistent session across queries that share prefixes,
        // exercise integer branch-and-bound and disequality splits, and
        // shrink as well as grow the asserted row set. Verdict kinds
        // (and unsat cores) must match the from-scratch path exactly.
        let mut inc = IncrementalLinear::new(AssertionStack::new(1, true));
        let (k, r) = ints(1);
        let queries: Vec<Vec<TheoryItem>> = vec![
            // 2 ≤ 3x ≤ 7: sat with integral witness.
            vec![
                item(
                    0,
                    NlConstraint::new(Expr::int(3) * Expr::var(0), CmpOp::Ge, q(2)),
                    true,
                ),
                item(
                    1,
                    NlConstraint::new(Expr::int(3) * Expr::var(0), CmpOp::Le, q(7)),
                    true,
                ),
            ],
            // Same prefix, extra diseqs: 1 ≤ x ≤ 2 ∧ x ≠ 1 ∧ x ≠ 2 unsat.
            vec![
                item(0, NlConstraint::new(Expr::var(0), CmpOp::Ge, q(1)), true),
                item(1, NlConstraint::new(Expr::var(0), CmpOp::Le, q(2)), true),
                item(2, NlConstraint::new(Expr::var(0), CmpOp::Eq, q(1)), false),
                item(3, NlConstraint::new(Expr::var(0), CmpOp::Eq, q(2)), false),
            ],
            // Shrink back to the shared prefix: sat again.
            vec![
                item(0, NlConstraint::new(Expr::var(0), CmpOp::Ge, q(1)), true),
                item(1, NlConstraint::new(Expr::var(0), CmpOp::Le, q(2)), true),
            ],
            // 2x = 3: no integer solution.
            vec![item(
                0,
                NlConstraint::new(Expr::int(2) * Expr::var(0), CmpOp::Eq, q(3)),
                true,
            )],
        ];
        for items in &queries {
            let scratch = run(items, k.clone(), r.clone());
            let incremental = run_inc(&mut inc, items, k.clone(), r.clone());
            match (&scratch, &incremental) {
                (TheoryVerdict::Sat(_), TheoryVerdict::Sat(_)) => {}
                (TheoryVerdict::Unsat(a), TheoryVerdict::Unsat(b)) => assert_eq!(a, b),
                other => panic!("scratch vs incremental disagree: {other:?}"),
            }
        }
        // The session really did warm-start: one cold check, then reuse.
        assert!(inc.stack().warm_starts() > 0);
    }

    #[test]
    fn empty_query_is_sat() {
        let (k, r) = reals(1);
        match run(&[], k, r) {
            TheoryVerdict::Sat(_) => {}
            other => panic!("{other:?}"),
        }
    }
}
