//! The ABsolver control loop (paper Sec. 1 and Sec. 4).
//!
//! The loop is the paper's lazy-SMT iteration: query the Boolean solver
//! for a model of the CNF skeleton; induce the arithmetic constraint
//! system from the model (true atoms assert their constraints, false atoms
//! their negations, `¬(… = c)` splitting into `< c ∨ > c`); check it with
//! the linear solver — and, "in case the output pin's value of the circuit
//! is not yet known", the nonlinear solver; on theory conflict, feed the
//! (minimised) conflicting subset back to the Boolean solver as a blocking
//! clause and iterate, "until a solution is found, or all possible
//! assignments have been shown infeasible".
//!
//! The orchestrator's internal bookkeeping also enumerates *all* models
//! ([`Orchestrator::solve_all`]), regardless of whether the Boolean
//! backend supports native enumeration (Sec. 4's LSAT discussion).

use crate::backends::{
    BooleanSolver, CascadeNonlinear, CdclBoolean, LinearBackend, LinearBackendStats,
    NonlinearBackend, NonlinearBackendStats, SimplexLinear,
};
use crate::preprocess::{PreprocessSummary, Preprocessed, ProblemPreprocessor};
use crate::problem::{AbModel, AbProblem, ArithModel, VarKind};
use crate::structure::Partition;
use crate::theory::{
    check, IncrementalLinear, LinActivity, TheoryBudget, TheoryContext, TheoryItem, TheoryTiming,
    TheoryVerdict,
};
use absolver_logic::{Clause, Lit, Tri, Var};
use absolver_nonlinear::NlConstraint;
use absolver_num::Interval;
use absolver_trace::{saturating_micros, JsonObject, NullSink, TraceEvent, TraceSink};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Outcome of solving an AB-problem.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Satisfiable, with a model.
    Sat(Box<AbModel>),
    /// Unsatisfiable.
    Unsat,
    /// Undecided within the configured budgets (the nonlinear engines are
    /// incomplete in general).
    Unknown,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    /// Returns `true` for [`Outcome::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Outcome::Unsat)
    }

    /// The model, if SAT.
    pub fn model(&self) -> Option<&AbModel> {
        match self {
            Outcome::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Error produced by the control loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The per-call iteration limit was exceeded.
    IterationLimit(u64),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::IterationLimit(n) => {
                write!(f, "control loop exceeded {n} Boolean iterations")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Statistics of a solving run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OrchestratorStats {
    /// Boolean models examined.
    pub boolean_iterations: u64,
    /// Theory checks performed.
    pub theory_checks: u64,
    /// Blocking clauses sent back to the Boolean solver.
    pub conflicts_fed_back: u64,
    /// Sum of literals across those blocking clauses.
    pub conflict_literals: u64,
    /// Theory checks that ended in `Unknown`.
    pub unknown_checks: u64,
    /// Whether the last call hit its wall-clock limit.
    pub timed_out: bool,
    /// Whether the last call was stopped by a cancellation token.
    pub cancelled: bool,
    /// Theory-conflict clauses exported to sibling shards (parallel solving).
    pub clauses_shared: u64,
    /// Clauses imported from sibling shards (parallel solving).
    pub clauses_imported: u64,
    /// Summed transport latency of imported lemmas (send to import).
    pub share_latency: Duration,
    /// Wall-clock time spent in the Boolean solver (`next_model`).
    pub boolean_time: Duration,
    /// Wall-clock time spent in the linear theory phase (simplex +
    /// branch-and-bound + disequality splits).
    pub linear_time: Duration,
    /// Wall-clock time spent in the nonlinear theory phase.
    pub nonlinear_time: Duration,
    /// Wall-clock time spent minimising conflict cores (a subset of
    /// [`OrchestratorStats::linear_time`]).
    pub conflict_min_time: Duration,
    /// Simplex pivots performed by the linear backends.
    pub simplex_pivots: u64,
    /// Incremental simplex checks that warm-started from the previous
    /// feasible basis instead of re-tableauing (0 when no backend
    /// provides an assertion stack).
    pub simplex_warm_starts: u64,
    /// Theory checks answered from the verdict cache (no simplex or
    /// nonlinear work at all).
    pub theory_cache_hits: u64,
    /// Theory checks that missed the verdict cache and were computed.
    pub theory_cache_misses: u64,
    /// HC4 interval contractions performed by the nonlinear backends.
    pub hc4_contractions: u64,
    /// BC3 bound-shaving contractions performed by the nonlinear backends.
    pub bc3_contractions: u64,
    /// Interval-Newton contractions performed by the nonlinear backends.
    pub newton_contractions: u64,
    /// Nonlinear contraction-cache lookups answered without a revise.
    pub contraction_cache_hits: u64,
    /// Nonlinear contraction-cache lookups that fell through to a revise.
    pub contraction_cache_misses: u64,
    /// Nonlinear solves that resumed a non-empty persistent contraction
    /// cache — contraction work inherited from an *earlier* check (or, in
    /// the service, an earlier request via a pooled session). Nonzero
    /// proves cross-solve sharing actually happened; the stable interned
    /// constraint ids are what keep the inherited entries valid.
    pub contraction_cache_resumes: u64,
    /// Terms interned into the global hash-consed arena during the call
    /// (preprocessing included): structurally *new* terms that allocated
    /// an arena node.
    pub terms_interned: u64,
    /// Intern requests during the call answered by an existing arena
    /// node (structural duplicates collapsed to an id copy).
    pub term_dedup_hits: u64,
    /// Wall-clock time of the preprocessing pass (zero when none is
    /// installed or the call bypassed it).
    pub preprocess_time: Duration,
    /// Boolean variables eliminated by preprocessing.
    pub pre_vars_eliminated: u64,
    /// Clauses eliminated by preprocessing.
    pub pre_clauses_eliminated: u64,
    /// Theory atoms statically decided and removed by preprocessing.
    pub pre_atoms_eliminated: u64,
    /// Arithmetic-variable ranges tightened by preprocessing.
    pub pre_ranges_tightened: u64,
    /// Constraints eliminated by the subsumption/dominance pass
    /// (duplicate conjuncts, affine-dominated conjuncts, subsumed
    /// clauses).
    pub subsumed_constraints: u64,
    /// Independent connected components the incidence-graph partition
    /// found (0 when no partitioning ran, 1 when the problem is one
    /// component, ≥ 2 when the solve was decomposed).
    pub components: u64,
    /// Solves decided statically unsatisfiable by analysis before the
    /// control loop ran (0 or 1 for a single call; sums under
    /// accumulation).
    pub static_unsat: u64,
    /// Wall-clock time of the last `solve`/`solve_all` call.
    pub elapsed: Duration,
}

impl fmt::Display for OrchestratorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iterations={} theory_checks={} conflicts={} avg_conflict_len={:.1} unknown={} \
             timed_out={} cancelled={} shared={} imported={} pivots={} warm_starts={} \
             cache_hits={} cache_misses={} contractions={}/{}/{} contraction_cache={}/{} \
             terms_interned={} term_dedup={} pre_vars={} pre_clauses={} pre_atoms={} pre_ranges={} \
             subsumed={} components={} static_unsat={} preprocess={:?} \
             boolean={:?} linear={:?} nonlinear={:?} conflict_min={:?} elapsed={:?}",
            self.boolean_iterations,
            self.theory_checks,
            self.conflicts_fed_back,
            if self.conflicts_fed_back == 0 {
                0.0
            } else {
                self.conflict_literals as f64 / self.conflicts_fed_back as f64
            },
            self.unknown_checks,
            self.timed_out,
            self.cancelled,
            self.clauses_shared,
            self.clauses_imported,
            self.simplex_pivots,
            self.simplex_warm_starts,
            self.theory_cache_hits,
            self.theory_cache_misses,
            self.hc4_contractions,
            self.bc3_contractions,
            self.newton_contractions,
            self.contraction_cache_hits,
            self.contraction_cache_misses,
            self.terms_interned,
            self.term_dedup_hits,
            self.pre_vars_eliminated,
            self.pre_clauses_eliminated,
            self.pre_atoms_eliminated,
            self.pre_ranges_tightened,
            self.subsumed_constraints,
            self.components,
            self.static_unsat,
            self.preprocess_time,
            self.boolean_time,
            self.linear_time,
            self.nonlinear_time,
            self.conflict_min_time,
            self.elapsed,
        )
    }
}

impl OrchestratorStats {
    /// Adds another run's counters into this one (durations sum, the
    /// `timed_out`/`cancelled` flags OR). Incremental sessions fold every
    /// per-check delta into their cumulative statistics this way, so the
    /// cumulative counters are monotone across checks.
    pub fn accumulate(&mut self, other: &OrchestratorStats) {
        self.boolean_iterations += other.boolean_iterations;
        self.theory_checks += other.theory_checks;
        self.conflicts_fed_back += other.conflicts_fed_back;
        self.conflict_literals += other.conflict_literals;
        self.unknown_checks += other.unknown_checks;
        self.timed_out |= other.timed_out;
        self.cancelled |= other.cancelled;
        self.clauses_shared += other.clauses_shared;
        self.clauses_imported += other.clauses_imported;
        self.share_latency += other.share_latency;
        self.boolean_time += other.boolean_time;
        self.linear_time += other.linear_time;
        self.nonlinear_time += other.nonlinear_time;
        self.conflict_min_time += other.conflict_min_time;
        self.simplex_pivots += other.simplex_pivots;
        self.simplex_warm_starts += other.simplex_warm_starts;
        self.theory_cache_hits += other.theory_cache_hits;
        self.theory_cache_misses += other.theory_cache_misses;
        self.hc4_contractions += other.hc4_contractions;
        self.bc3_contractions += other.bc3_contractions;
        self.newton_contractions += other.newton_contractions;
        self.contraction_cache_hits += other.contraction_cache_hits;
        self.contraction_cache_misses += other.contraction_cache_misses;
        self.contraction_cache_resumes += other.contraction_cache_resumes;
        self.terms_interned += other.terms_interned;
        self.term_dedup_hits += other.term_dedup_hits;
        self.preprocess_time += other.preprocess_time;
        self.pre_vars_eliminated += other.pre_vars_eliminated;
        self.pre_clauses_eliminated += other.pre_clauses_eliminated;
        self.pre_atoms_eliminated += other.pre_atoms_eliminated;
        self.pre_ranges_tightened += other.pre_ranges_tightened;
        self.subsumed_constraints += other.subsumed_constraints;
        self.components += other.components;
        self.static_unsat += other.static_unsat;
        self.elapsed += other.elapsed;
    }

    /// Total interval contractions across all cascade stages (HC4 + BC3 +
    /// Newton).
    pub fn total_contractions(&self) -> u64 {
        self.hc4_contractions + self.bc3_contractions + self.newton_contractions
    }

    /// Average contractions per theory check — the nonlinear counterpart
    /// of pivots-per-check, so nonlinear-only workloads report their
    /// per-check effort instead of an all-zero simplex column. `0.0` when
    /// no theory check ran.
    pub fn contractions_per_check(&self) -> f64 {
        if self.theory_checks == 0 {
            0.0
        } else {
            self.total_contractions() as f64 / self.theory_checks as f64
        }
    }

    /// Hit rate of the nonlinear contraction cache (`0.0` when it never
    /// fired).
    pub fn contraction_cache_hit_rate(&self) -> f64 {
        let total = self.contraction_cache_hits + self.contraction_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.contraction_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of intern requests during the call that were structural
    /// duplicates answered by an existing arena node (`0.0` when nothing
    /// was interned).
    pub fn term_dedup_rate(&self) -> f64 {
        let total = self.terms_interned + self.term_dedup_hits;
        if total == 0 {
            0.0
        } else {
            self.term_dedup_hits as f64 / total as f64
        }
    }

    /// Serialises the statistics as a single JSON object (the payload of
    /// `--stats json` and the `BENCH_*.json` reports). Times are reported
    /// in integer microseconds; the per-phase ones are nested under
    /// `"phase"`.
    pub fn to_json(&self) -> String {
        let mut phase = JsonObject::new();
        phase
            .field_u64("boolean_us", saturating_micros(self.boolean_time))
            .field_u64("linear_us", saturating_micros(self.linear_time))
            .field_u64("nonlinear_us", saturating_micros(self.nonlinear_time))
            .field_u64("conflict_min_us", saturating_micros(self.conflict_min_time));
        let mut obj = JsonObject::new();
        obj.field_u64("boolean_iterations", self.boolean_iterations)
            .field_u64("theory_checks", self.theory_checks)
            .field_u64("conflicts_fed_back", self.conflicts_fed_back)
            .field_u64("conflict_literals", self.conflict_literals)
            .field_u64("unknown_checks", self.unknown_checks)
            .field_bool("timed_out", self.timed_out)
            .field_bool("cancelled", self.cancelled)
            .field_u64("clauses_shared", self.clauses_shared)
            .field_u64("clauses_imported", self.clauses_imported)
            .field_u64("share_latency_us", saturating_micros(self.share_latency))
            .field_u64("simplex_pivots", self.simplex_pivots)
            .field_u64("simplex_warm_starts", self.simplex_warm_starts)
            .field_u64("theory_cache_hits", self.theory_cache_hits)
            .field_u64("theory_cache_misses", self.theory_cache_misses)
            .field_u64("hc4_contractions", self.hc4_contractions)
            .field_u64("bc3_contractions", self.bc3_contractions)
            .field_u64("newton_contractions", self.newton_contractions)
            .field_u64("contraction_cache_hits", self.contraction_cache_hits)
            .field_u64("contraction_cache_misses", self.contraction_cache_misses)
            .field_u64("contraction_cache_resumes", self.contraction_cache_resumes)
            .field_u64("terms_interned", self.terms_interned)
            .field_u64("term_dedup_hits", self.term_dedup_hits)
            .field_raw("preprocess", &{
                let mut pre = JsonObject::new();
                pre.field_u64("vars_eliminated", self.pre_vars_eliminated)
                    .field_u64("clauses_eliminated", self.pre_clauses_eliminated)
                    .field_u64("atoms_eliminated", self.pre_atoms_eliminated)
                    .field_u64("ranges_tightened", self.pre_ranges_tightened)
                    .field_u64("time_us", saturating_micros(self.preprocess_time));
                pre.finish()
            })
            .field_u64("subsumed_constraints", self.subsumed_constraints)
            .field_u64("components", self.components)
            .field_u64("static_unsat", self.static_unsat)
            .field_raw("phase", &phase.finish())
            .field_u64("elapsed_us", saturating_micros(self.elapsed));
        obj.finish()
    }
}

/// Configuration of the control loop.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Hard cap on Boolean models examined per `solve` call.
    pub max_iterations: u64,
    /// Cap on branch combinations when false multi-constraint definitions
    /// force disjunctive exploration.
    pub max_def_branches: usize,
    /// Theory budgets.
    pub theory: TheoryBudget,
    /// Wall-clock limit per `solve`/`solve_all` call; on expiry the call
    /// returns [`Outcome::Unknown`] (and [`OrchestratorStats::timed_out`]
    /// is set).
    pub time_limit: Option<Duration>,
    /// Memoize theory verdicts keyed on the involved-literal assignment
    /// (on by default). Repeated theory projections — `solve_all`
    /// enumeration differing only in free Boolean variables, cubes
    /// re-visiting sub-assignments — are answered without touching the
    /// arithmetic engines. Disable for ablation / differential testing.
    pub theory_cache: bool,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions {
            max_iterations: 2_000_000,
            max_def_branches: 64,
            theory: TheoryBudget::default(),
            time_limit: None,
            theory_cache: true,
        }
    }
}

/// A shared lemma in flight: the send instant (for import-latency
/// accounting) and the clause itself.
pub(crate) type TimedLemma = (Instant, Vec<Lit>);

/// Snapshot of the incremental assertion stack's cumulative effort
/// counters, for per-call delta attribution when the stack persists
/// across calls (incremental sessions).
#[derive(Debug, Clone, Copy, Default)]
struct StackCounters {
    pivots: u64,
    warm_starts: u64,
    min_time: Duration,
}

/// What one [`crate::session::Session`] check asks of the orchestrator —
/// how much incremental state can be trusted from the previous check.
pub(crate) struct SessionSolveArgs<'a> {
    /// Reload the Boolean solver from the problem CNF and replay
    /// `lemmas`. Set after a pop, a definition change, a reset, or a
    /// previous check whose unknown-projection blockers tainted the
    /// solver's internal learnt clauses.
    pub(crate) reload: bool,
    /// Rebuild the interned per-definition constraint pool (the
    /// definitions changed since the previous check).
    pub(crate) rebuild_defs: bool,
    /// Surviving session lemmas, replayed on reload.
    pub(crate) lemmas: &'a [Vec<Lit>],
    /// Problem clauses appended since the previous check (warm path
    /// only; ignored on reload, where the full CNF is loaded).
    pub(crate) new_clauses: &'a [Clause],
}

/// Clause-sharing endpoints of one parallel shard: theory-conflict
/// clauses flow out through `outbox` (one sender per sibling) and in
/// through `inbox`. Imported clauses are kept in `pool` so they survive
/// the reload at the start of each `solve_under` call.
pub(crate) struct ClauseSharing {
    pub(crate) outbox: Vec<mpsc::Sender<TimedLemma>>,
    pub(crate) inbox: mpsc::Receiver<TimedLemma>,
    pub(crate) pool: Vec<Vec<Lit>>,
}

impl fmt::Debug for ClauseSharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClauseSharing(peers={}, pool={})",
            self.outbox.len(),
            self.pool.len()
        )
    }
}

/// A memoized theory verdict. `Unknown` is never cached — it reflects a
/// budget, not a fact about the assignment.
#[derive(Debug, Clone)]
enum CachedVerdict {
    Sat(ArithModel),
    Unsat(Vec<usize>),
}

/// Theory-verdict cache keyed on the involved-literal assignment (the
/// polarity-carrying `Lit`s of the defined variables, in definition
/// order — a deterministic, canonical tag for the projection). The
/// verdict of a theory check depends only on this projection, so it is
/// valid across `solve_all` enumeration, repeated cube sub-assignments,
/// and whole solve calls — as long as the problem itself is unchanged,
/// which `fingerprint` guards. Incremental sessions bypass the
/// fingerprint and instead invalidate entries selectively
/// ([`Orchestrator::cache_retain`]); each entry carries the value of
/// `seq` at insertion time so a session can discard exactly the entries
/// computed after a popped frame opened.
#[derive(Debug, Default)]
struct TheoryCache {
    map: HashMap<Vec<Lit>, (u64, CachedVerdict)>,
    fingerprint: u64,
    seq: u64,
}

/// splitmix64 finalizer, used to fold interned ids and range bits into
/// the problem fingerprint.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A cheap structural fingerprint of the parts of a problem the theory
/// cache depends on: the arithmetic variables (name, kind, range) and the
/// atom definitions. The CNF skeleton is deliberately excluded — clauses
/// do not change what a theory projection means.
///
/// Constraints contribute their interned [`absolver_nonlinear::ConstraintId`]:
/// hash-consing makes structural equality id equality, so one `u64` mix
/// per constraint replaces formatting the whole expression tree — O(1)
/// per constraint instead of O(size).
///
/// The service layer reuses this as the warm-session / lemma-store bucket
/// key: two problems with equal fingerprints *probably* share declarations
/// and definitions, but the fingerprint is a hash — callers that need
/// soundness (lemma reuse) must confirm structural equality separately.
/// (Interned ids are process-local, so the fingerprint is only meaningful
/// within one process — which is all the in-process caches need.)
pub fn problem_fingerprint(problem: &AbProblem) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for v in problem.arith_vars() {
        for b in v.name.bytes() {
            h = mix64(h ^ b as u64);
        }
        h = mix64(
            h ^ match v.kind {
                VarKind::Int => 0x1111,
                VarKind::Real => 0x2222,
            },
        );
        h = mix64(h ^ v.range.lo().to_bits());
        h = mix64(h ^ v.range.hi().to_bits());
    }
    for (var, def) in problem.defs() {
        h = mix64(h ^ (var.index() as u64).wrapping_add(0x5851_f42d_4c95_7f2d));
        for c in &def.constraints {
            h = mix64(h ^ (c.cid().raw() as u64 + 1));
        }
    }
    h
}

/// The ABsolver engine: a Boolean backend plus lists of linear and
/// nonlinear backends, orchestrated by the lazy-SMT control loop.
#[derive(Debug)]
pub struct Orchestrator {
    boolean: Box<dyn BooleanSolver>,
    linear: Vec<Box<dyn LinearBackend>>,
    nonlinear: Vec<Box<dyn NonlinearBackend>>,
    options: OrchestratorOptions,
    stats: OrchestratorStats,
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    sharing: Option<ClauseSharing>,
    sink: Arc<dyn TraceSink>,
    /// Interned per-def constraint pool, rebuilt at each solve entry:
    /// one `Arc` per constraint so per-iteration obligation building
    /// bumps reference counts instead of deep-cloning expression trees.
    interned: Vec<(Var, Vec<Arc<NlConstraint>>)>,
    /// Incremental linear session of the current call (when the first
    /// linear backend provides an assertion stack).
    incremental: Option<IncrementalLinear>,
    cache: TheoryCache,
    /// Equisatisfiable pre-pass run by `solve` (not `solve_under` with a
    /// cube, not `solve_all`) before the control loop starts.
    preprocessor: Option<Box<dyn ProblemPreprocessor>>,
    /// When `Some`, every theory-conflict blocking clause derived by
    /// `run_loop` is also appended here. Incremental sessions
    /// ([`crate::session::Session`]) drain it after each check to build
    /// their persistent lemma store; `None` (the default) costs nothing.
    session_lemmas: Option<Vec<Vec<Lit>>>,
}

impl Default for Orchestrator {
    fn default() -> Self {
        Orchestrator::with_defaults()
    }
}

impl Orchestrator {
    /// The default stack: CDCL Boolean, minimising simplex, interval +
    /// penalty nonlinear cascade.
    pub fn with_defaults() -> Orchestrator {
        Orchestrator {
            boolean: Box::new(CdclBoolean::new()),
            linear: vec![Box::new(SimplexLinear::new())],
            nonlinear: vec![Box::new(CascadeNonlinear::default())],
            options: OrchestratorOptions::default(),
            stats: OrchestratorStats::default(),
            cancel: None,
            deadline: None,
            sharing: None,
            sink: Arc::new(NullSink),
            interned: Vec::new(),
            incremental: None,
            cache: TheoryCache::default(),
            preprocessor: None,
            session_lemmas: None,
        }
    }

    /// Starts from an empty solver stack; push backends with the
    /// `with_*` methods.
    pub fn custom(boolean: Box<dyn BooleanSolver>) -> Orchestrator {
        Orchestrator {
            boolean,
            linear: Vec::new(),
            nonlinear: Vec::new(),
            options: OrchestratorOptions::default(),
            stats: OrchestratorStats::default(),
            cancel: None,
            deadline: None,
            sharing: None,
            sink: Arc::new(NullSink),
            interned: Vec::new(),
            incremental: None,
            cache: TheoryCache::default(),
            preprocessor: None,
            session_lemmas: None,
        }
    }

    /// Replaces the Boolean backend.
    pub fn with_boolean(mut self, b: Box<dyn BooleanSolver>) -> Orchestrator {
        self.boolean = b;
        self
    }

    /// Appends a linear backend (tried after any existing ones).
    pub fn with_linear(mut self, b: Box<dyn LinearBackend>) -> Orchestrator {
        self.linear.push(b);
        self
    }

    /// Appends a nonlinear backend (tried after any existing ones).
    pub fn with_nonlinear(mut self, b: Box<dyn NonlinearBackend>) -> Orchestrator {
        self.nonlinear.push(b);
        self
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: OrchestratorOptions) -> Orchestrator {
        self.options = options;
        self
    }

    /// Installs an equisatisfiable preprocessing pass, run by
    /// [`Orchestrator::solve`] before the control loop starts. The
    /// concrete simplifier lives in the `absolver-analyze` crate
    /// (`absolver_analyze::Simplifier`); cube solving
    /// ([`Orchestrator::solve_under`]) and model enumeration
    /// ([`Orchestrator::solve_all`]) deliberately bypass it — cubes may
    /// assume eliminated variables, and enumeration counts models of the
    /// *original* problem.
    pub fn with_preprocessor(mut self, pass: Box<dyn ProblemPreprocessor>) -> Orchestrator {
        self.preprocessor = Some(pass);
        self
    }

    /// Installs or clears the preprocessing pass (see
    /// [`Orchestrator::with_preprocessor`]).
    pub fn set_preprocessor(&mut self, pass: Option<Box<dyn ProblemPreprocessor>>) {
        self.preprocessor = pass;
    }

    /// Installs a cooperative cancellation token. When another party sets
    /// it to `true`, the control loop (and the theory engines inside it)
    /// stop at their next check point and the call returns
    /// [`Outcome::Unknown`] with [`OrchestratorStats::cancelled`] set.
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Orchestrator {
        self.set_cancel_token(Some(token));
        self
    }

    /// Installs or clears the cancellation token (see
    /// [`Orchestrator::with_cancel_token`]).
    pub fn set_cancel_token(&mut self, token: Option<Arc<AtomicBool>>) {
        self.cancel = token;
    }

    /// Installs an absolute wall-clock deadline shared across subsequent
    /// calls (parallel shards use this so a per-call `time_limit` cannot
    /// restart the clock on every cube). `None` clears it; the per-call
    /// [`OrchestratorOptions::time_limit`] still applies independently.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Wires this orchestrator into a clause-sharing fabric: every theory
    /// conflict clause it derives is broadcast through `outbox`, and
    /// clauses arriving on `inbox` are imported at the top of each loop
    /// iteration (and re-applied after any reload).
    pub(crate) fn set_clause_sharing(
        &mut self,
        outbox: Vec<mpsc::Sender<TimedLemma>>,
        inbox: mpsc::Receiver<TimedLemma>,
    ) {
        self.sharing = Some(ClauseSharing {
            outbox,
            inbox,
            pool: Vec::new(),
        });
    }

    /// Installs a trace sink: every observability event of subsequent
    /// `solve*` calls is emitted through it. Defaults to
    /// [`absolver_trace::NullSink`] (tracing disabled, near-zero cost).
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Orchestrator {
        self.sink = sink;
        self
    }

    /// Installs or replaces the trace sink (see
    /// [`Orchestrator::with_trace_sink`]).
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// The currently installed trace sink.
    pub fn trace_sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink)
    }

    /// Emits a trace event if tracing is enabled. The event is built
    /// lazily so a disabled sink costs only the `enabled()` check.
    fn trace(&self, build: impl FnOnce() -> TraceEvent) {
        if self.sink.enabled() {
            self.sink.emit(&build());
        }
    }

    /// Statistics of the most recent call.
    pub fn stats(&self) -> OrchestratorStats {
        self.stats
    }

    /// Sum of the linear backends' cumulative counters (for
    /// snapshot-diff attribution of per-call cost).
    fn linear_snapshot(&self) -> LinearBackendStats {
        let mut total = LinearBackendStats::default();
        for b in &self.linear {
            let s = b.stats();
            total.checks += s.checks;
            total.pivots += s.pivots;
            total.conflict_min_time += s.conflict_min_time;
        }
        total
    }

    /// Sum of the nonlinear backends' cumulative counters.
    fn nonlinear_snapshot(&self) -> NonlinearBackendStats {
        let mut total = NonlinearBackendStats::default();
        for b in &self.nonlinear {
            let s = b.stats();
            total.boxes_explored += s.boxes_explored;
            total.hc4_contractions += s.hc4_contractions;
            total.bc3_contractions += s.bc3_contractions;
            total.newton_contractions += s.newton_contractions;
            total.contraction_cache_hits += s.contraction_cache_hits;
            total.contraction_cache_misses += s.contraction_cache_misses;
            total.contraction_cache_resumes += s.contraction_cache_resumes;
        }
        total
    }

    /// Cumulative effort counters of the incremental assertion stack.
    /// The one-shot `solve*` entry points build a fresh stack per call,
    /// so a zero snapshot reads the absolute values; persistent sessions
    /// snapshot before each check and fold in only the delta — the same
    /// stack survives across checks and its counters never reset.
    fn stack_counters(&self) -> StackCounters {
        match &self.incremental {
            Some(inc) => {
                let stack = inc.stack();
                StackCounters {
                    pivots: stack.pivots(),
                    warm_starts: stack.warm_starts(),
                    min_time: stack.min_time(),
                }
            }
            None => StackCounters::default(),
        }
    }

    /// Folds the backend-counter deltas since `(lin0, nl0)` into
    /// `self.stats` (called at the end of each `solve*` entry point),
    /// plus the incremental session's own counters — its checks bypass
    /// the one-shot backends entirely, so they are not in the snapshots.
    fn absorb_backend_deltas(
        &mut self,
        lin0: LinearBackendStats,
        nl0: NonlinearBackendStats,
        term0: (u64, u64),
    ) {
        self.absorb_deltas_since(lin0, nl0, StackCounters::default(), term0);
    }

    /// Like [`Orchestrator::absorb_backend_deltas`], but also diffs the
    /// assertion-stack counters against `stk0` instead of reading them
    /// as absolutes.
    fn absorb_deltas_since(
        &mut self,
        lin0: LinearBackendStats,
        nl0: NonlinearBackendStats,
        stk0: StackCounters,
        term0: (u64, u64),
    ) {
        let lin1 = self.linear_snapshot();
        let nl1 = self.nonlinear_snapshot();
        self.stats.simplex_pivots += lin1.pivots.saturating_sub(lin0.pivots);
        self.stats.conflict_min_time += lin1
            .conflict_min_time
            .saturating_sub(lin0.conflict_min_time);
        self.stats.hc4_contractions += nl1.hc4_contractions.saturating_sub(nl0.hc4_contractions);
        self.stats.bc3_contractions += nl1.bc3_contractions.saturating_sub(nl0.bc3_contractions);
        self.stats.newton_contractions += nl1
            .newton_contractions
            .saturating_sub(nl0.newton_contractions);
        self.stats.contraction_cache_hits += nl1
            .contraction_cache_hits
            .saturating_sub(nl0.contraction_cache_hits);
        self.stats.contraction_cache_misses += nl1
            .contraction_cache_misses
            .saturating_sub(nl0.contraction_cache_misses);
        self.stats.contraction_cache_resumes += nl1
            .contraction_cache_resumes
            .saturating_sub(nl0.contraction_cache_resumes);
        let stk1 = self.stack_counters();
        self.stats.simplex_pivots += stk1.pivots.saturating_sub(stk0.pivots);
        self.stats.simplex_warm_starts += stk1.warm_starts.saturating_sub(stk0.warm_starts);
        self.stats.conflict_min_time += stk1.min_time.saturating_sub(stk0.min_time);
        let (int1, ded1) = absolver_nonlinear::term::local_counters();
        let interned = int1.saturating_sub(term0.0);
        let dedup = ded1.saturating_sub(term0.1);
        self.stats.terms_interned += interned;
        self.stats.term_dedup_hits += dedup;
        if interned + dedup > 0 {
            self.trace(|| {
                let arena = absolver_nonlinear::term::stats();
                TraceEvent::new("term.intern")
                    .field_u64("interned", interned)
                    .field_u64("dedup_hits", dedup)
                    .field_u64("arena_terms", arena.terms as u64)
            });
        }
    }

    /// Per-call session setup: rebuilds the interned constraint pool,
    /// opens a fresh incremental linear session (when the first linear
    /// backend provides one), and invalidates the theory cache if the
    /// problem changed since the previous call.
    fn prepare_session(&mut self, problem: &AbProblem) {
        self.interned = problem
            .defs()
            .map(|(var, def)| {
                (
                    var,
                    def.constraints
                        .iter()
                        .map(|c| Arc::new(c.clone()))
                        .collect(),
                )
            })
            .collect();
        self.incremental = self
            .linear
            .first()
            .and_then(|b| b.make_stack(problem.arith_vars().len()))
            .map(IncrementalLinear::new);
        let fingerprint = problem_fingerprint(problem);
        if self.cache.fingerprint != fingerprint {
            self.cache.map.clear();
            self.cache.fingerprint = fingerprint;
        }
    }

    /// Looks up the memoized verdict for an involved-literal assignment.
    fn cached_verdict(&self, involved: &[Lit]) -> Option<TheoryVerdict> {
        if !self.options.theory_cache {
            return None;
        }
        self.cache.map.get(involved).map(|(_, v)| match v {
            CachedVerdict::Sat(m) => TheoryVerdict::Sat(m.clone()),
            CachedVerdict::Unsat(tags) => TheoryVerdict::Unsat(tags.clone()),
        })
    }

    /// Memoizes a computed verdict (`Unknown` is budget-dependent and
    /// never stored).
    fn store_verdict(&mut self, involved: &[Lit], verdict: &TheoryVerdict) {
        if !self.options.theory_cache {
            return;
        }
        let cached = match verdict {
            TheoryVerdict::Sat(m) => CachedVerdict::Sat(m.clone()),
            TheoryVerdict::Unsat(tags) => CachedVerdict::Unsat(tags.clone()),
            TheoryVerdict::Unknown => return,
        };
        self.cache.seq += 1;
        self.cache
            .map
            .insert(involved.to_vec(), (self.cache.seq, cached));
    }

    /// The cache-insertion sequence number: entries stored later have a
    /// strictly larger stamp. Sessions snapshot it at `push` so `pop` can
    /// discard exactly the entries computed inside the popped frames.
    pub(crate) fn cache_seq(&self) -> u64 {
        self.cache.seq
    }

    /// Retains only the verdict-cache entries for which `keep` returns
    /// true. The closure sees the involved-literal key, the insertion
    /// stamp (see [`Orchestrator::cache_seq`]), and whether the entry is
    /// a SAT verdict. This is the session-side invalidation hook; the
    /// non-session paths keep using the fingerprint wholesale clear.
    pub(crate) fn cache_retain(&mut self, mut keep: impl FnMut(&[Lit], u64, bool) -> bool) {
        self.cache
            .map
            .retain(|k, (seq, v)| keep(k, *seq, matches!(v, CachedVerdict::Sat(_))));
    }

    /// Drops every cached verdict (session `reset`).
    pub(crate) fn cache_clear(&mut self) {
        self.cache.map.clear();
    }

    /// Solves an AB-problem. When a preprocessor is installed
    /// ([`Orchestrator::with_preprocessor`]), the pass runs first and the
    /// control loop solves the shrunk problem; SAT witnesses are lifted
    /// back to the original before being returned.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::IterationLimit`] if the Boolean loop exceeds
    /// the configured iteration cap.
    pub fn solve(&mut self, problem: &AbProblem) -> Result<Outcome, SolveError> {
        let Some(pass) = self.preprocessor.take() else {
            return self.solve_under(problem, &[]);
        };
        let pre_started = Instant::now();
        self.trace(|| {
            TraceEvent::new("preprocess.start")
                .field("pass", pass.name())
                .field_u64("num_vars", problem.cnf().num_vars() as u64)
                .field_u64("num_clauses", problem.cnf().len() as u64)
                .field_u64("num_defs", problem.num_defs() as u64)
        });
        let pre_term0 = absolver_nonlinear::term::local_counters();
        let result = pass.preprocess(problem);
        let pre_elapsed = pre_started.elapsed();
        let pre_term1 = absolver_nonlinear::term::local_counters();
        let pre_terms = (
            pre_term1.0.saturating_sub(pre_term0.0),
            pre_term1.1.saturating_sub(pre_term0.1),
        );
        self.trace(|| {
            let (label, s) = match &result {
                Preprocessed::Shrunk { summary, .. } => ("shrunk", summary),
                Preprocessed::TriviallyUnsat { summary } => ("trivially-unsat", summary),
            };
            TraceEvent::new("preprocess.end")
                .field("result", label)
                .field_u64("vars_eliminated", s.vars_eliminated)
                .field_u64("clauses_eliminated", s.clauses_eliminated)
                .field_u64("atoms_eliminated", s.atoms_eliminated)
                .field_u64("ranges_tightened", s.ranges_tightened)
                .duration(pre_elapsed)
        });
        self.preprocessor = Some(pass);
        match result {
            Preprocessed::TriviallyUnsat { summary } => {
                self.stats = OrchestratorStats::default();
                self.record_preprocess(&summary, pre_elapsed, pre_terms);
                self.stats.static_unsat = 1;
                self.trace(|| {
                    TraceEvent::new("analyze.static_unsat")
                        .field("pass", "preprocess")
                        .duration(pre_elapsed)
                });
                Ok(Outcome::Unsat)
            }
            Preprocessed::Shrunk {
                problem: shrunk,
                reconstruction,
                summary,
            } => {
                let partition = Partition::of(&shrunk);
                self.trace(|| {
                    let sizes = partition
                        .sizes()
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    TraceEvent::new("analyze.partition")
                        .field_u64("components", partition.len() as u64)
                        .field("sizes", sizes)
                });
                let outcome = if partition.is_trivial() {
                    self.solve_under(&shrunk, &[])
                } else {
                    self.solve_components(&shrunk, &partition)
                };
                // `solve_under` resets the stats at entry, so the pass
                // accounting must be written back afterwards.
                self.record_preprocess(&summary, pre_elapsed, pre_terms);
                self.stats.components = partition.len() as u64;
                match outcome {
                    Ok(Outcome::Sat(mut model)) => {
                        reconstruction.lift(&mut model);
                        Ok(Outcome::Sat(model))
                    }
                    other => other,
                }
            }
        }
    }

    /// Solves the connected components of an already-partitioned problem
    /// one after another, accumulating stats across the sub-solves.
    /// Unsatisfiability of any component refutes the conjunction, so the
    /// loop exits early on the first Unsat; an Unknown component poisons a
    /// SAT answer down to Unknown; when every component is SAT the
    /// per-component witnesses are stitched back into one model.
    fn solve_components(
        &mut self,
        problem: &AbProblem,
        partition: &Partition,
    ) -> Result<Outcome, SolveError> {
        let started = Instant::now();
        let mut total = OrchestratorStats::default();
        let mut models: Vec<AbModel> = Vec::with_capacity(partition.len());
        let mut unknown = false;
        for idx in 0..partition.len() {
            let sub = partition.extract(problem, idx);
            let comp_started = Instant::now();
            let outcome = self.solve_under(&sub, &[]);
            total.accumulate(&self.stats);
            self.trace(|| {
                let label = match &outcome {
                    Ok(Outcome::Sat(_)) => "sat",
                    Ok(Outcome::Unsat) => "unsat",
                    Ok(Outcome::Unknown) => "unknown",
                    Err(_) => "iteration-limit",
                };
                TraceEvent::new("analyze.component")
                    .field_u64("component", idx as u64)
                    .field_u64("size", partition.components()[idx].size() as u64)
                    .field("outcome", label)
                    .duration(comp_started.elapsed())
            });
            match outcome {
                Ok(Outcome::Sat(model)) => models.push(*model),
                Ok(Outcome::Unsat) => {
                    total.elapsed = started.elapsed();
                    self.stats = total;
                    return Ok(Outcome::Unsat);
                }
                Ok(Outcome::Unknown) => unknown = true,
                Err(err) => {
                    total.elapsed = started.elapsed();
                    self.stats = total;
                    return Err(err);
                }
            }
        }
        total.elapsed = started.elapsed();
        self.stats = total;
        if unknown {
            return Ok(Outcome::Unknown);
        }
        Ok(Outcome::Sat(Box::new(partition.stitch(&models))))
    }

    /// Folds a preprocessing pass's effect into the current stats.
    fn record_preprocess(
        &mut self,
        summary: &PreprocessSummary,
        elapsed: Duration,
        terms: (u64, u64),
    ) {
        self.stats.preprocess_time = elapsed;
        self.stats.terms_interned += terms.0;
        self.stats.term_dedup_hits += terms.1;
        self.stats.pre_vars_eliminated = summary.vars_eliminated;
        self.stats.pre_clauses_eliminated = summary.clauses_eliminated;
        self.stats.pre_atoms_eliminated = summary.atoms_eliminated;
        self.stats.pre_ranges_tightened = summary.ranges_tightened;
        self.stats.subsumed_constraints = summary.constraints_subsumed;
        self.stats.elapsed += elapsed;
    }

    /// Solves an AB-problem under assumption literals (a *cube*): the
    /// problem is decided together with the assumptions, without adding
    /// them as clauses. [`Outcome::Unsat`] then means *unsatisfiable under
    /// the cube*. Cube-and-conquer shards drive their search space
    /// partition through this entry point.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::IterationLimit`] if the Boolean loop exceeds
    /// the configured iteration cap.
    pub fn solve_under(
        &mut self,
        problem: &AbProblem,
        assumptions: &[Lit],
    ) -> Result<Outcome, SolveError> {
        let started = Instant::now();
        self.stats = OrchestratorStats::default();
        let lin0 = self.linear_snapshot();
        let nl0 = self.nonlinear_snapshot();
        let term0 = absolver_nonlinear::term::local_counters();
        self.trace(|| {
            TraceEvent::new("solve.start")
                .field_u64("num_vars", problem.cnf().num_vars() as u64)
                .field_u64("num_defs", problem.defs().count() as u64)
                .field_u64("assumptions", assumptions.len() as u64)
        });
        self.prepare_session(problem);
        self.boolean.load(problem.cnf());
        if !self.replay_imported_pool() {
            // An imported lemma already contradicts the formula: the
            // problem is unsat, no iteration needed.
            self.stats.elapsed = started.elapsed();
            self.absorb_backend_deltas(lin0, nl0, term0);
            self.trace(|| {
                TraceEvent::new("solve.end")
                    .field("outcome", "unsat")
                    .duration(started.elapsed())
            });
            return Ok(Outcome::Unsat);
        }
        if !self.boolean.set_assumptions(assumptions) {
            // Backend without assumption support: a cube is equivalently
            // the conjunction of its literals as unit clauses (the clause
            // database is rebuilt by the next `load` anyway).
            for &lit in assumptions {
                if !self.boolean.add_clause(&[lit]) {
                    self.stats.elapsed = started.elapsed();
                    self.absorb_backend_deltas(lin0, nl0, term0);
                    self.trace(|| {
                        TraceEvent::new("solve.end")
                            .field("outcome", "unsat")
                            .duration(started.elapsed())
                    });
                    return Ok(Outcome::Unsat);
                }
            }
        }
        let outcome = self.run_loop(problem, started);
        self.stats.elapsed = started.elapsed();
        self.absorb_backend_deltas(lin0, nl0, term0);
        self.trace(|| {
            let label = match &outcome {
                Ok(Outcome::Sat(_)) => "sat",
                Ok(Outcome::Unsat) => "unsat",
                Ok(Outcome::Unknown) => "unknown",
                Err(_) => "iteration-limit",
            };
            TraceEvent::new("solve.end")
                .field("outcome", label)
                .field_u64("iterations", self.stats.boolean_iterations)
                .duration(started.elapsed())
        });
        outcome
    }

    /// Runs one check for a persistent [`crate::session::Session`].
    ///
    /// Unlike [`Orchestrator::solve_under`] this does **not** reset the
    /// incremental machinery: the interned definition pool is rebuilt only
    /// when `args.rebuild_defs` says the definitions changed, the simplex
    /// assertion stack persists across checks (rebuilt only when the
    /// arithmetic variable count outgrows its columns), and the theory
    /// cache is left untouched — the session invalidates it selectively
    /// through [`Orchestrator::cache_retain`]. The Boolean solver is kept
    /// warm when `args.reload` is false (only `args.new_clauses` are
    /// added); otherwise it is reloaded from the problem CNF and the
    /// surviving session lemmas are replayed.
    pub(crate) fn session_solve(
        &mut self,
        problem: &AbProblem,
        args: SessionSolveArgs<'_>,
    ) -> Result<Outcome, SolveError> {
        let started = Instant::now();
        self.stats = OrchestratorStats::default();
        let lin0 = self.linear_snapshot();
        let nl0 = self.nonlinear_snapshot();
        let term0 = absolver_nonlinear::term::local_counters();
        if args.rebuild_defs {
            self.interned = problem
                .defs()
                .map(|(var, def)| {
                    (
                        var,
                        def.constraints
                            .iter()
                            .map(|c| Arc::new(c.clone()))
                            .collect(),
                    )
                })
                .collect();
        }
        // The assertion stack survives across checks (that is where the
        // cross-check warm starts come from); rebuild it only when the
        // arithmetic variable count outgrew its columns, with headroom so
        // a streaming deepening does not re-tableau on every step.
        let num_arith = problem.arith_vars().len();
        let needs_stack = match &self.incremental {
            Some(inc) => inc.stack().num_vars() < num_arith,
            None => true,
        };
        if needs_stack {
            self.incremental = self
                .linear
                .first()
                .and_then(|b| b.make_stack((num_arith * 2).max(4)))
                .map(IncrementalLinear::new);
        }
        let stk0 = self.stack_counters();
        self.session_lemmas = Some(Vec::new());
        let trivially_unsat = if args.reload {
            self.boolean.load(problem.cnf());
            args.lemmas
                .iter()
                .any(|lemma| !self.boolean.add_clause(lemma))
        } else {
            self.boolean.reserve_vars(problem.cnf().num_vars());
            args.new_clauses
                .iter()
                .any(|c| !self.boolean.add_clause(c.lits()))
        };
        self.boolean.set_assumptions(&[]);
        let outcome = if trivially_unsat {
            // A clause (or replayed lemma) already contradicts the
            // formula at the root — sound, because lemmas are implied by
            // the definitions they mention.
            Ok(Outcome::Unsat)
        } else {
            self.run_loop(problem, started)
        };
        self.stats.elapsed = started.elapsed();
        self.absorb_deltas_since(lin0, nl0, stk0, term0);
        outcome
    }

    /// Drains the theory-conflict clauses captured during the last
    /// [`Orchestrator::session_solve`] call (and disables capture until
    /// the next one).
    pub(crate) fn take_session_lemmas(&mut self) -> Vec<Vec<Lit>> {
        self.session_lemmas.take().unwrap_or_default()
    }

    /// Re-adds every previously imported shared clause after a reload.
    /// Imported clauses are theory lemmas, valid for the problem itself —
    /// dropping them on reload would silently lose pruning other shards
    /// already paid for. Returns `false` if a pool clause made the
    /// formula trivially unsatisfiable; the callers then short-circuit
    /// to `Unsat` exactly like [`Orchestrator::drain_imports`].
    fn replay_imported_pool(&mut self) -> bool {
        if let Some(sharing) = &mut self.sharing {
            for clause in &sharing.pool {
                if !self.boolean.add_clause(clause) {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerates models of an AB-problem, up to `max_models`. Models are
    /// distinct as *full Boolean assignments*: the blocking clause added
    /// after each model projects on **all** Boolean variables, free
    /// skeleton variables included. Two enumerated models may therefore
    /// share their theory-literal projection (and arithmetic witness)
    /// while differing only on a free variable.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::IterationLimit`] if the Boolean loop exceeds
    /// the configured iteration cap.
    pub fn solve_all(
        &mut self,
        problem: &AbProblem,
        max_models: usize,
    ) -> Result<Vec<AbModel>, SolveError> {
        let started = Instant::now();
        self.stats = OrchestratorStats::default();
        let lin0 = self.linear_snapshot();
        let nl0 = self.nonlinear_snapshot();
        let term0 = absolver_nonlinear::term::local_counters();
        self.trace(|| {
            TraceEvent::new("solve.start")
                .field("mode", "solve_all")
                .field_u64("num_vars", problem.cnf().num_vars() as u64)
                .field_u64("num_defs", problem.defs().count() as u64)
        });
        self.prepare_session(problem);
        self.boolean.load(problem.cnf());
        self.boolean.set_assumptions(&[]);
        let mut models = Vec::new();
        if !self.replay_imported_pool() {
            // An imported lemma already contradicts the formula: there
            // are no models to enumerate.
            self.stats.elapsed = started.elapsed();
            self.absorb_backend_deltas(lin0, nl0, term0);
            self.trace(|| {
                TraceEvent::new("solve.end")
                    .field("outcome", "solve_all")
                    .field_u64("models", 0)
                    .duration(started.elapsed())
            });
            return Ok(models);
        }
        // Project on all Boolean variables so distinct Boolean models are
        // enumerated (theory atoms and skeleton alike).
        let all_vars: Vec<Var> = (0..problem.cnf().num_vars())
            .map(|i| Var::new(i as u32))
            .collect();
        while models.len() < max_models {
            match self.run_loop(problem, started)? {
                Outcome::Sat(model) => {
                    let blocking: Vec<Lit> = all_vars
                        .iter()
                        .filter_map(|&v| match model.boolean.value(v) {
                            Tri::True => Some(v.negative()),
                            Tri::False => Some(v.positive()),
                            Tri::Unknown => None,
                        })
                        .collect();
                    models.push(*model);
                    if blocking.is_empty() || !self.boolean.add_clause(&blocking) {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.stats.elapsed = started.elapsed();
        self.absorb_backend_deltas(lin0, nl0, term0);
        self.trace(|| {
            TraceEvent::new("solve.end")
                .field("outcome", "solve_all")
                .field_u64("models", models.len() as u64)
                .duration(started.elapsed())
        });
        Ok(models)
    }

    /// The wall-clock deadline of a call that started at `started`: the
    /// earlier of the per-call `time_limit` and any installed absolute
    /// deadline.
    fn effective_deadline(&self, started: Instant) -> Option<Instant> {
        let per_call = self.options.time_limit.map(|limit| started + limit);
        match (per_call, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True once the cancellation token has been set by another party.
    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|token| token.load(Ordering::Relaxed))
    }

    /// Imports clauses shared by sibling shards. Returns `false` if an
    /// import made the Boolean formula trivially unsatisfiable.
    fn drain_imports(&mut self) -> bool {
        let Some(sharing) = &mut self.sharing else {
            return true;
        };
        while let Ok((sent_at, clause)) = sharing.inbox.try_recv() {
            let latency = sent_at.elapsed();
            self.stats.clauses_imported += 1;
            self.stats.share_latency += latency;
            if self.sink.enabled() {
                self.sink.emit(
                    &TraceEvent::new("lemma.import")
                        .field_u64("len", clause.len() as u64)
                        .duration(latency),
                );
            }
            let ok = self.boolean.add_clause(&clause);
            sharing.pool.push(clause);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Broadcasts a theory-conflict clause to sibling shards. Only clauses
    /// backed by a theory UNSAT proof are shared — they are lemmas of the
    /// problem itself, so they prune every shard soundly. (Unknown-model
    /// blocking clauses are *not* lemmas and must stay local.)
    fn share_clause(&mut self, clause: &[Lit]) {
        if let Some(sharing) = &mut self.sharing {
            self.stats.clauses_shared += 1;
            let sent_at = Instant::now();
            for tx in &sharing.outbox {
                let _ = tx.send((sent_at, clause.to_vec()));
            }
        }
    }

    fn run_loop(&mut self, problem: &AbProblem, started: Instant) -> Result<Outcome, SolveError> {
        let kinds: Vec<VarKind> = problem.arith_vars().iter().map(|v| v.kind).collect();
        let ranges: Vec<Interval> = problem.arith_vars().iter().map(|v| v.range).collect();
        let mut had_unknown = false;
        let deadline = self.effective_deadline(started);
        // Let the nonlinear engines poll the token/deadline mid-search —
        // a 10-million-box branch-and-prune must not outlive the wall clock.
        for backend in self.nonlinear.iter_mut() {
            backend.set_interrupt(self.cancel.clone(), deadline);
        }

        loop {
            if self.stats.boolean_iterations >= self.options.max_iterations {
                return Err(SolveError::IterationLimit(self.options.max_iterations));
            }
            if self.is_cancelled() {
                self.stats.cancelled = true;
                return Ok(Outcome::Unknown);
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    self.stats.timed_out = true;
                    return Ok(Outcome::Unknown);
                }
            }
            if !self.drain_imports() {
                return Ok(if had_unknown {
                    Outcome::Unknown
                } else {
                    Outcome::Unsat
                });
            }
            let bool_started = Instant::now();
            let model = self.boolean.next_model();
            self.stats.boolean_time += bool_started.elapsed();
            let Some(model) = model else {
                return Ok(if had_unknown {
                    Outcome::Unknown
                } else {
                    Outcome::Unsat
                });
            };
            self.stats.boolean_iterations += 1;
            self.trace(|| {
                TraceEvent::new("boolean.model")
                    .field_u64("iteration", self.stats.boolean_iterations)
                    .duration(bool_started.elapsed())
            });

            // Induce theory obligations from the Boolean model, out of
            // the interned pool (`Arc` bumps, no expression clones).
            // `fixed` items hold in every branch; `choices` collects the
            // disjunctive alternatives from false multi-constraint defs.
            let mut fixed: Vec<TheoryItem> = Vec::new();
            let mut choices: Vec<(Lit, Vec<Arc<NlConstraint>>)> = Vec::new();
            let mut involved: Vec<Lit> = Vec::new();
            for (var, constraints) in &self.interned {
                match model.value(*var) {
                    Tri::True => {
                        involved.push(var.positive());
                        let tag = involved.len() - 1;
                        for c in constraints {
                            fixed.push(TheoryItem {
                                tag,
                                constraint: Arc::clone(c),
                                positive: true,
                            });
                        }
                    }
                    Tri::False => {
                        involved.push(var.negative());
                        let tag = involved.len() - 1;
                        if constraints.len() == 1 {
                            fixed.push(TheoryItem {
                                tag,
                                constraint: Arc::clone(&constraints[0]),
                                positive: false,
                            });
                        } else {
                            // ¬(c₁ ∧ … ∧ cₖ): at least one must fail.
                            choices.push((var.negative(), constraints.clone()));
                        }
                    }
                    Tri::Unknown => {}
                }
            }

            let theory_started = Instant::now();
            let verdict = match self.cached_verdict(&involved) {
                Some(verdict) => {
                    self.stats.theory_cache_hits += 1;
                    self.trace(|| {
                        TraceEvent::new("cache.hit").field_u64("literals", involved.len() as u64)
                    });
                    verdict
                }
                None => {
                    if self.options.theory_cache {
                        self.stats.theory_cache_misses += 1;
                        self.trace(|| {
                            TraceEvent::new("cache.miss")
                                .field_u64("literals", involved.len() as u64)
                        });
                    }
                    let verdict = self.check_with_choices(
                        problem, &fixed, &choices, &involved, &kinds, &ranges, deadline,
                    );
                    self.store_verdict(&involved, &verdict);
                    verdict
                }
            };
            self.trace(|| {
                let label = match &verdict {
                    TheoryVerdict::Sat(_) => "sat",
                    TheoryVerdict::Unsat(_) => "unsat",
                    TheoryVerdict::Unknown => "unknown",
                };
                TraceEvent::new("theory.check")
                    .field("verdict", label)
                    .field_u64("obligations", fixed.len() as u64)
                    .duration(theory_started.elapsed())
            });

            match verdict {
                TheoryVerdict::Sat(arith) => {
                    return Ok(Outcome::Sat(Box::new(AbModel {
                        boolean: model,
                        arith,
                    })));
                }
                TheoryVerdict::Unsat(tags) => {
                    // Blocking clause: ¬(conjunction of conflicting literals).
                    let clause: Vec<Lit> = tags.iter().map(|&t| !involved[t]).collect();
                    self.stats.conflicts_fed_back += 1;
                    self.stats.conflict_literals += clause.len() as u64;
                    self.trace(|| {
                        TraceEvent::new("conflict").field_u64("literals", clause.len() as u64)
                    });
                    self.share_clause(&clause);
                    if let Some(log) = &mut self.session_lemmas {
                        log.push(clause.clone());
                    }
                    if !self.boolean.add_clause(&clause) {
                        return Ok(if had_unknown {
                            Outcome::Unknown
                        } else {
                            Outcome::Unsat
                        });
                    }
                }
                TheoryVerdict::Unknown => {
                    had_unknown = true;
                    self.stats.unknown_checks += 1;
                    // An Unknown caused by interruption is not a solver
                    // limitation: stop here and attribute it, rather than
                    // blocking the model and looping on a dead clock.
                    if self.is_cancelled() {
                        self.stats.cancelled = true;
                        return Ok(Outcome::Unknown);
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        self.stats.timed_out = true;
                        return Ok(Outcome::Unknown);
                    }
                    // Cannot decide this Boolean model; block its full
                    // theory projection and move on (final verdict can
                    // then be at best Unknown).
                    let clause: Vec<Lit> = involved.iter().map(|&l| !l).collect();
                    if clause.is_empty() || !self.boolean.add_clause(&clause) {
                        return Ok(Outcome::Unknown);
                    }
                }
            }
        }
    }

    /// Checks the theory obligations, exploring the disjunctive choices
    /// from false multi-constraint definitions.
    #[allow(clippy::too_many_arguments)]
    fn check_with_choices(
        &mut self,
        problem: &AbProblem,
        fixed: &[TheoryItem],
        choices: &[(Lit, Vec<Arc<NlConstraint>>)],
        involved: &[Lit],
        kinds: &[VarKind],
        ranges: &[Interval],
        deadline: Option<Instant>,
    ) -> TheoryVerdict {
        // Branch count = Π |choiceᵢ|; refuse pathological blow-ups.
        let mut combos: usize = 1;
        for (_, alts) in choices {
            combos = combos.saturating_mul(alts.len());
            if combos > self.options.max_def_branches {
                return TheoryVerdict::Unknown;
            }
        }

        let mut conflict_union: Vec<usize> = Vec::new();
        let mut any_unknown = false;
        for combo in 0..combos.max(1) {
            let mut items: Vec<TheoryItem> = fixed.to_vec();
            let mut rest = combo;
            for (lit, alts) in choices {
                let pick = rest % alts.len();
                rest /= alts.len();
                let tag = involved
                    .iter()
                    .position(|l| l == lit)
                    .expect("choice literal is involved");
                items.push(TheoryItem {
                    tag,
                    constraint: Arc::clone(&alts[pick]),
                    positive: false,
                });
            }
            self.stats.theory_checks += 1;
            let mut budget = self.options.theory.clone();
            budget.deadline = deadline;
            budget.cancel = self.cancel.clone();
            let sink: Option<&dyn TraceSink> = if self.sink.enabled() {
                Some(&*self.sink)
            } else {
                None
            };
            let mut ctx = TheoryContext {
                num_vars: problem.arith_vars().len(),
                kinds,
                ranges,
                linear: &mut self.linear,
                nonlinear: &mut self.nonlinear,
                budget,
                timing: TheoryTiming::default(),
                sink,
                incremental: self.incremental.as_mut(),
                lin_activity: LinActivity::default(),
            };
            let verdict = check(&items, &mut ctx);
            let timing = ctx.timing;
            self.stats.linear_time += timing.linear;
            self.stats.nonlinear_time += timing.nonlinear;
            match verdict {
                TheoryVerdict::Sat(m) => return TheoryVerdict::Sat(m),
                TheoryVerdict::Unknown => any_unknown = true,
                TheoryVerdict::Unsat(tags) => conflict_union.extend(tags),
            }
        }
        if any_unknown {
            TheoryVerdict::Unknown
        } else {
            conflict_union.sort_unstable();
            conflict_union.dedup();
            TheoryVerdict::Unsat(conflict_union)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{PenaltyNonlinear, RestartingBoolean};
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;
    use absolver_num::Rational;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    const PAPER_EXAMPLE: &str = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c range a -10 10
c range x -10 10
c range y -10 10
";

    #[test]
    fn solves_paper_example() {
        let problem: AbProblem = PAPER_EXAMPLE.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("satisfiable");
        assert!(model.satisfies(&problem, 1e-6), "model must check out");
        assert!(orc.stats().boolean_iterations >= 1);
    }

    #[test]
    fn pure_boolean_problem() {
        // No definitions: behaves exactly like a SAT solver.
        let problem: AbProblem = "p cnf 2 2\n1 2 0\n-1 -2 0\n".parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_sat());
        let unsat: AbProblem = "p cnf 1 2\n1 0\n-1 0\n".parse().unwrap();
        assert!(orc.solve(&unsat).unwrap().is_unsat());
    }

    #[test]
    fn theory_conflict_forces_unsat() {
        // Both atoms asserted, but x ≥ 5 ∧ x ≤ 3 is linearly impossible.
        let text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat());
        assert!(orc.stats().conflicts_fed_back >= 1);
    }

    #[test]
    fn boolean_escape_hatch() {
        // (a ∨ b) with a: x ≥ 5, b: x ≤ 3 — each alone is satisfiable; and
        // even a ∧ ¬b works (x = 7 > 3). The solver must find some
        // consistent combination.
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("satisfiable");
        assert!(model.satisfies(&problem, 1e-6));
    }

    #[test]
    fn negated_equality_splits() {
        // Unit ¬a with a: x = 2, plus b: 1 ≤ x ≤ 3 forced true.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let a = b.atom(Expr::var(x), CmpOp::Eq, q(2));
        let lo = b.atom(Expr::var(x), CmpOp::Ge, q(1));
        let hi = b.atom(Expr::var(x), CmpOp::Le, q(3));
        b.require(a.negative());
        b.require(lo.positive());
        b.require(hi.positive());
        let problem = b.build();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("x ∈ [1,3] \\ {2} is nonempty");
        assert!(model.satisfies(&problem, 1e-9));
    }

    #[test]
    fn integer_vs_real_semantics() {
        // 1 < x < 2 has a real solution but no integer one.
        let real_text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x > 1\nc def real 2 x < 2\n";
        let int_text = "p cnf 2 2\n1 0\n2 0\nc def int 1 x > 1\nc def int 2 x < 2\n";
        let mut orc = Orchestrator::with_defaults();
        let real_problem: AbProblem = real_text.parse().unwrap();
        assert!(orc.solve(&real_problem).unwrap().is_sat());
        let int_problem: AbProblem = int_text.parse().unwrap();
        assert!(orc.solve(&int_problem).unwrap().is_unsat());
    }

    #[test]
    fn nonlinear_unsat_is_proved() {
        // x² ≤ -1 within a bounded range: interval engine proves UNSAT.
        let text = "p cnf 1 1\n1 0\nc def real 1 x^2 <= -1\nc range x -50 50\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat());
    }

    #[test]
    fn false_conjunction_definition_branches() {
        // v ⇔ (x ≥ 0 ∧ x ≤ 10), ¬v forced, x = 20 consistent via x > 10.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let v = b.atom(Expr::var(x), CmpOp::Ge, q(0));
        b.define(
            v,
            absolver_nonlinear::NlConstraint::new(Expr::var(x), CmpOp::Le, q(10)),
        );
        let pin = b.atom(Expr::var(x), CmpOp::Ge, q(15));
        b.require(v.negative());
        b.require(pin.positive());
        let problem = b.build();
        let mut orc = Orchestrator::with_defaults();
        let outcome = orc.solve(&problem).unwrap();
        let model = outcome.model().expect("x ≥ 15 falsifies the conjunction");
        assert!(model.satisfies(&problem, 1e-9));
    }

    #[test]
    fn false_conjunction_definition_unsat() {
        // v ⇔ (x ≥ 0 ∧ x ≤ 10), ¬v forced, but 3 ≤ x ≤ 4 forced too.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let v = b.atom(Expr::var(x), CmpOp::Ge, q(0));
        b.define(
            v,
            absolver_nonlinear::NlConstraint::new(Expr::var(x), CmpOp::Le, q(10)),
        );
        let lo = b.atom(Expr::var(x), CmpOp::Ge, q(3));
        let hi = b.atom(Expr::var(x), CmpOp::Le, q(4));
        b.require(v.negative());
        b.require(lo.positive());
        b.require(hi.positive());
        let problem = b.build();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat());
    }

    #[test]
    fn solve_all_enumerates_boolean_models() {
        // Two free atoms over a generous range: x ≥ 0 and x ≤ 100 — of the
        // 4 Boolean combinations, (¬(x≥0) ∧ ¬(x≤100)) is theory-impossible.
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\nc def real 2 x <= 100\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        let models = orc.solve_all(&problem, usize::MAX).unwrap();
        assert_eq!(models.len(), 3);
        for m in &models {
            assert!(m.satisfies(&problem, 1e-9));
        }
    }

    #[test]
    fn solve_all_blocks_on_all_boolean_vars() {
        // One defined atom plus one *free* skeleton variable under
        // (1 ∨ 2): enumeration is over full Boolean assignments (see the
        // doc), so the free variable contributes distinct models —
        // (T,T), (T,F), (F,T) — even though only two theory projections
        // exist.
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        let models = orc.solve_all(&problem, usize::MAX).unwrap();
        assert_eq!(models.len(), 3);
        for m in &models {
            assert!(m.satisfies(&problem, 1e-9));
        }
        // The repeated projection is answered from the theory cache.
        assert!(orc.stats().theory_cache_hits >= 1);
    }

    #[test]
    fn cache_disabled_agrees_and_counts_nothing() {
        let problem: AbProblem = PAPER_EXAMPLE.parse().unwrap();
        let mut on = Orchestrator::with_defaults();
        let mut off = Orchestrator::with_defaults().with_options(OrchestratorOptions {
            theory_cache: false,
            ..Default::default()
        });
        let a = on.solve(&problem).unwrap();
        let b = off.solve(&problem).unwrap();
        assert_eq!(a.is_sat(), b.is_sat());
        assert_eq!(off.stats().theory_cache_hits, 0);
        assert_eq!(off.stats().theory_cache_misses, 0);
    }

    #[test]
    fn warm_starts_are_counted() {
        // 2x + 2y = 1 over integers in [0, 1]: branch-and-bound re-checks
        // the stack at every node (the multi-variable row keeps branch
        // bounds from conflicting at assert time), so every check after
        // the first warm-starts the session.
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Int);
        let y = b.arith_var("y", VarKind::Int);
        let sum = b.atom(
            Expr::int(2) * Expr::var(x) + Expr::int(2) * Expr::var(y),
            CmpOp::Eq,
            q(1),
        );
        let atoms = [
            sum,
            b.atom(Expr::var(x), CmpOp::Ge, q(0)),
            b.atom(Expr::var(x), CmpOp::Le, q(1)),
            b.atom(Expr::var(y), CmpOp::Ge, q(0)),
            b.atom(Expr::var(y), CmpOp::Le, q(1)),
        ];
        for a in atoms {
            b.require(a.positive());
        }
        let problem = b.build();
        let mut orc = Orchestrator::with_defaults();
        assert!(orc.solve(&problem).unwrap().is_unsat());
        assert!(orc.stats().simplex_warm_starts >= 1);
    }

    #[test]
    fn unsat_import_pool_short_circuits_replay() {
        // Contradictory unit lemmas arrive via clause sharing during the
        // first call and stay pooled; the second call must short-circuit
        // while replaying the pool, before any Boolean iteration.
        let problem: AbProblem = "p cnf 1 1\n1 -1 0\n".parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        let (tx, rx) = mpsc::channel();
        orc.set_clause_sharing(Vec::new(), rx);
        let v = Var::new(0);
        tx.send((Instant::now(), vec![v.positive()])).unwrap();
        tx.send((Instant::now(), vec![v.negative()])).unwrap();
        assert!(orc.solve(&problem).unwrap().is_unsat());
        assert!(orc.solve(&problem).unwrap().is_unsat());
        assert_eq!(orc.stats().boolean_iterations, 0);
    }

    #[test]
    fn solve_all_respects_cap() {
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\nc def real 2 x <= 100\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        assert_eq!(orc.solve_all(&problem, 2).unwrap().len(), 2);
    }

    #[test]
    fn restarting_backend_produces_same_verdicts() {
        let problem: AbProblem = PAPER_EXAMPLE.parse().unwrap();
        let mut orc =
            Orchestrator::with_defaults().with_boolean(Box::new(RestartingBoolean::new()));
        let outcome = orc.solve(&problem).unwrap();
        assert!(outcome.model().unwrap().satisfies(&problem, 1e-6));
    }

    #[test]
    fn penalty_only_cannot_prove_unsat() {
        // With only the numerical IPOPT stand-in, an UNSAT nonlinear core
        // yields Unknown, not Unsat — faithful to a local solver's limits.
        let text = "p cnf 1 1\n1 0\nc def real 1 x^2 <= -1\nc range x -50 50\n";
        let problem: AbProblem = text.parse().unwrap();
        let mut orc = Orchestrator::custom(Box::new(CdclBoolean::new()))
            .with_linear(Box::new(SimplexLinear::new()))
            .with_nonlinear(Box::new(PenaltyNonlinear::default()));
        assert_eq!(orc.solve(&problem).unwrap(), Outcome::Unknown);
    }

    #[test]
    fn iteration_limit_errors() {
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x >= 0\nc def real 2 x <= 100\n";
        let problem: AbProblem = text.parse().unwrap();
        let opts = OrchestratorOptions {
            max_iterations: 0,
            ..Default::default()
        };
        let mut orc = Orchestrator::with_defaults().with_options(opts);
        assert_eq!(orc.solve(&problem), Err(SolveError::IterationLimit(0)));
    }

    #[test]
    fn stats_display() {
        let problem: AbProblem = "p cnf 1 1\n1 0\n".parse().unwrap();
        let mut orc = Orchestrator::with_defaults();
        orc.solve(&problem).unwrap();
        let s = format!("{}", orc.stats());
        assert!(s.contains("iterations=1"));
    }
}

#[cfg(test)]
mod time_limit_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn zero_time_limit_returns_unknown() {
        let problem: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x >= 0\n".parse().unwrap();
        let opts = OrchestratorOptions {
            time_limit: Some(Duration::ZERO),
            ..Default::default()
        };
        let mut orc = Orchestrator::with_defaults().with_options(opts);
        assert_eq!(orc.solve(&problem).unwrap(), Outcome::Unknown);
        assert!(orc.stats().timed_out);
    }

    #[test]
    fn generous_time_limit_does_not_interfere() {
        let problem: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x >= 0\n".parse().unwrap();
        let opts = OrchestratorOptions {
            time_limit: Some(Duration::from_secs(3600)),
            ..Default::default()
        };
        let mut orc = Orchestrator::with_defaults().with_options(opts);
        assert!(orc.solve(&problem).unwrap().is_sat());
        assert!(!orc.stats().timed_out);
    }
}
