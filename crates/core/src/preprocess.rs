//! Preprocessor interface of the control loop.
//!
//! A [`ProblemPreprocessor`] rewrites an [`AbProblem`] into an
//! *equisatisfiable* one before the lazy-SMT loop starts — dropping
//! statically-decided theory atoms, eliminated Boolean variables, and
//! redundant clauses — together with a [`Reconstruction`] that lifts a
//! satisfying assignment of the shrunk problem back to one of the
//! original. The interface lives in `absolver-core` (the orchestrator
//! needs to call it) while the concrete simplifier lives in the
//! `absolver-analyze` crate, which depends on core; callers attach it
//! with [`crate::Orchestrator::with_preprocessor`].

use crate::problem::{AbModel, AbProblem};
use absolver_logic::{Tri, Var};
use std::fmt;

/// Aggregate effect of a preprocessing pass, reported through
/// `preprocess.end` trace events and the `pre_*` fields of
/// [`crate::OrchestratorStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessSummary {
    /// Boolean variables eliminated (forced or made vacuous).
    pub vars_eliminated: u64,
    /// Clauses removed from the CNF skeleton.
    pub clauses_eliminated: u64,
    /// Theory atoms (definition constraints) statically decided and
    /// removed from the definition map.
    pub atoms_eliminated: u64,
    /// Arithmetic variables whose search range was tightened by the
    /// root interval pass.
    pub ranges_tightened: u64,
    /// Constraints and clauses removed by the subsumption/dominance pass:
    /// duplicate conjuncts (same interned id twice in one definition),
    /// affine-dominated conjuncts, and clauses subsumed by a strict
    /// sub-clause.
    pub constraints_subsumed: u64,
}

impl PreprocessSummary {
    /// `true` when the pass changed nothing at all.
    pub fn is_noop(&self) -> bool {
        *self == PreprocessSummary::default()
    }
}

/// Lifts a model of the shrunk problem back to the original problem.
///
/// Preprocessing never renumbers variables, so lifting only has to
/// re-assert the polarities of the Boolean variables the pass decided
/// statically (eliminated unit literals, pure literals, statically
/// decided atoms); all surviving variables keep the solver's values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reconstruction {
    /// Variables fixed by the preprocessor, with their forced values.
    pub forced: Vec<(Var, bool)>,
}

impl Reconstruction {
    /// Writes the forced polarities into `model` so it satisfies the
    /// original (pre-preprocessing) problem.
    pub fn lift(&self, model: &mut AbModel) {
        for &(var, value) in &self.forced {
            model
                .boolean
                .set(var, if value { Tri::True } else { Tri::False });
        }
    }
}

/// Result of a preprocessing pass.
#[derive(Debug, Clone)]
pub enum Preprocessed {
    /// The problem was rewritten into an equisatisfiable one. A model of
    /// `problem` lifts back to the original via `reconstruction`; the
    /// original is unsatisfiable iff `problem` is.
    Shrunk {
        /// The equisatisfiable rewritten problem (same variable
        /// numbering as the original).
        problem: AbProblem,
        /// Lifts shrunk-problem models back to the original.
        reconstruction: Reconstruction,
        /// What the pass eliminated.
        summary: PreprocessSummary,
    },
    /// Preprocessing proved the problem unsatisfiable outright (an empty
    /// clause was derived, or the root interval pass emptied a forced
    /// constraint's box).
    TriviallyUnsat {
        /// What the pass had eliminated before deriving the refutation.
        summary: PreprocessSummary,
    },
}

impl Preprocessed {
    /// The pass summary, whichever way the pass ended.
    pub fn summary(&self) -> &PreprocessSummary {
        match self {
            Preprocessed::Shrunk { summary, .. } => summary,
            Preprocessed::TriviallyUnsat { summary } => summary,
        }
    }
}

/// An equisatisfiability-preserving problem rewriter, run by
/// [`crate::Orchestrator::solve`] before the control loop starts.
///
/// Implementations must guarantee both directions: every model of the
/// shrunk problem lifts (via the returned [`Reconstruction`]) to a model
/// of the original, and unsatisfiability of the shrunk problem implies
/// unsatisfiability of the original. `TriviallyUnsat` must only be
/// returned with a sound refutation.
pub trait ProblemPreprocessor: fmt::Debug + Send {
    /// Short pass name, reported in `preprocess.*` trace events.
    fn name(&self) -> &str;

    /// Runs the pass over `problem`.
    fn preprocess(&self, problem: &AbProblem) -> Preprocessed;
}
