//! Line parser for the `absolver session` script language.
//!
//! One command per line; blank lines and `#` comments parse to `None`:
//!
//! ```text
//! var <int|real> <name>      declare an arithmetic variable
//! range <name> <lo> <hi>     tighten its search range
//! def <int|real> <v> <cmp>   bind Boolean var v (1-based) to a constraint
//! assert <lit> ... [0]       add a clause (DIMACS-style literals)
//! push / pop                 open / undo an assertion frame
//! check                      decide the current assertions
//! model                      print the model of the last check
//! reset                      drop every assertion and frame
//! ```
//!
//! The parser is **total**: every byte sequence either yields a command or
//! a spanned [`ScriptDiag`] — never a panic. That matters because the same
//! lines arrive over the `absolverd` wire, where an abort is an
//! availability bug, not a usage error. Totality is enforced by the
//! panic-freedom fuzz suite (`tests/fuzz_inputs.rs`).
//!
//! Structure is validated here; the `def` *constraint body* is handed back
//! raw (with its column) because parsing it needs the session's current
//! variable table — the caller forwards it to
//! [`crate::parse_session_constraint`].

use crate::problem::VarKind;
use absolver_logic::{Lit, Var};

/// Hard cap on 1-based Boolean variable indices accepted from scripts and
/// service requests. An adversarial `def int 4000000000 x >= 0` would
/// otherwise make the session allocate four billion fresh variables (and
/// the Boolean solver a matching assignment vector) before solving
/// anything.
pub const MAX_SCRIPT_VAR: usize = 1 << 22;

/// One spanned script diagnostic (the `AB02x` code block): `line`/`col`
/// are 1-based, `code` is the stable diagnostic code, `message` the
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptDiag {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Stable diagnostic code (`AB020` unknown command, `AB021` malformed
    /// command).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl ScriptDiag {
    fn new(line: usize, col: usize, code: &'static str, message: impl Into<String>) -> ScriptDiag {
        ScriptDiag {
            line,
            col,
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScriptDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.line, self.col, self.code, self.message
        )
    }
}

/// One structurally-validated script command. `Def` carries its raw
/// constraint body (plus column) for the caller to parse against the
/// session's variable table.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptCommand<'a> {
    /// `push`
    Push,
    /// `pop`
    Pop {
        /// Column of the command word, for the no-open-frame diagnostic.
        col: usize,
    },
    /// `reset`
    Reset,
    /// `check`
    Check,
    /// `model`
    Model,
    /// `var <kind> <name>`
    Var {
        /// Declared kind.
        kind: VarKind,
        /// Variable name.
        name: &'a str,
    },
    /// `range <name> <lo> <hi>` — bounds already validated: neither is
    /// NaN and `lo <= hi`, so the interval constructor cannot panic.
    Range {
        /// Variable name.
        name: &'a str,
        /// Column of the name, for unknown-variable diagnostics.
        name_col: usize,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `def <kind> <v> <body>`
    Def {
        /// Kind new variables in the body default to.
        kind: VarKind,
        /// The 0-based Boolean variable being defined.
        var: Var,
        /// Raw constraint body.
        body: &'a str,
        /// Column of the body, for constraint diagnostics.
        body_col: usize,
    },
    /// `assert <lit> ... [0]`
    Assert {
        /// Clause literals (the trailing DIMACS `0` is consumed).
        lits: Vec<Lit>,
    },
}

/// Walks one script line word by word, tracking the 1-based column of
/// every token for diagnostics.
struct LineCursor<'a> {
    rest: &'a str,
    col: usize,
}

impl<'a> LineCursor<'a> {
    fn new(line: &'a str) -> LineCursor<'a> {
        LineCursor { rest: line, col: 1 }
    }

    /// Next whitespace-separated word and its column, if any.
    fn word(&mut self) -> Option<(&'a str, usize)> {
        let trimmed = self.rest.trim_start();
        self.col += self.rest.len() - trimmed.len();
        if trimmed.is_empty() {
            self.rest = trimmed;
            return None;
        }
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        let word = &trimmed[..end];
        let at = self.col;
        self.rest = &trimmed[end..];
        self.col += end;
        Some((word, at))
    }

    /// Everything after the words consumed so far, and its column.
    fn remainder(&mut self) -> (&'a str, usize) {
        let trimmed = self.rest.trim_start();
        self.col += self.rest.len() - trimmed.len();
        self.rest = "";
        (trimmed.trim_end(), self.col)
    }
}

fn kind_word(cur: &mut LineCursor<'_>, line: usize) -> Result<VarKind, ScriptDiag> {
    match cur.word() {
        Some(("int", _)) => Ok(VarKind::Int),
        Some(("real", _)) => Ok(VarKind::Real),
        other => {
            let col = other.map_or(cur.col, |(_, c)| c);
            Err(ScriptDiag::new(
                line,
                col,
                "AB021",
                "expected `int` or `real`",
            ))
        }
    }
}

/// Parses one script line. Returns `Ok(None)` for blank and comment
/// lines, `Ok(Some(command))` for a well-formed command, and a spanned
/// diagnostic otherwise. Never panics, whatever the input bytes.
pub fn parse_script_line(raw: &str, line: usize) -> Result<Option<ScriptCommand<'_>>, ScriptDiag> {
    let mut cur = LineCursor::new(raw);
    // A line whose first "word" does not exist is blank (possibly
    // exotic Unicode whitespace that `trim` recognised but a naive
    // non-blank check did not) — skip it rather than index into it.
    let Some((cmd, cmd_col)) = cur.word() else {
        return Ok(None);
    };
    if cmd.starts_with('#') {
        return Ok(None);
    }
    match cmd {
        "push" => Ok(Some(ScriptCommand::Push)),
        "pop" => Ok(Some(ScriptCommand::Pop { col: cmd_col })),
        "reset" => Ok(Some(ScriptCommand::Reset)),
        "check" => Ok(Some(ScriptCommand::Check)),
        "model" => Ok(Some(ScriptCommand::Model)),
        "var" => {
            let kind = kind_word(&mut cur, line)?;
            let Some((name, _)) = cur.word() else {
                return Err(ScriptDiag::new(
                    line,
                    cur.col,
                    "AB021",
                    "expected a variable name",
                ));
            };
            Ok(Some(ScriptCommand::Var { kind, name }))
        }
        "range" => {
            let Some((name, name_col)) = cur.word() else {
                return Err(ScriptDiag::new(
                    line,
                    cur.col,
                    "AB021",
                    "expected a variable name",
                ));
            };
            let bound = |cur: &mut LineCursor| -> Result<(f64, usize), ScriptDiag> {
                match cur.word() {
                    Some((w, c)) => w.parse::<f64>().map(|v| (v, c)).map_err(|_| {
                        ScriptDiag::new(line, c, "AB021", format!("invalid bound `{w}`"))
                    }),
                    None => Err(ScriptDiag::new(line, cur.col, "AB021", "expected a bound")),
                }
            };
            let (lo, lo_col) = bound(&mut cur)?;
            let (hi, _) = bound(&mut cur)?;
            // `Interval::new` panics on NaN or inverted bounds; both are
            // reachable from the wire (`range x nan nan`, `range x 2 1`),
            // so they must be diagnostics here.
            if lo.is_nan() || hi.is_nan() {
                return Err(ScriptDiag::new(line, lo_col, "AB021", "bound is NaN"));
            }
            if lo > hi {
                return Err(ScriptDiag::new(
                    line,
                    lo_col,
                    "AB021",
                    format!("empty range [{lo}, {hi}]"),
                ));
            }
            Ok(Some(ScriptCommand::Range {
                name,
                name_col,
                lo,
                hi,
            }))
        }
        "def" => {
            let kind = kind_word(&mut cur, line)?;
            let var = match cur.word() {
                Some((w, c)) => match w.parse::<usize>() {
                    Ok(v) if (1..=MAX_SCRIPT_VAR).contains(&v) => Var::new((v - 1) as u32),
                    Ok(v) if v > MAX_SCRIPT_VAR => {
                        return Err(ScriptDiag::new(
                            line,
                            c,
                            "AB021",
                            format!("Boolean variable `{w}` exceeds the limit of {MAX_SCRIPT_VAR}"),
                        ));
                    }
                    _ => {
                        return Err(ScriptDiag::new(
                            line,
                            c,
                            "AB021",
                            format!("invalid Boolean variable `{w}` (1-based index)"),
                        ));
                    }
                },
                None => {
                    return Err(ScriptDiag::new(
                        line,
                        cur.col,
                        "AB021",
                        "expected a Boolean variable",
                    ));
                }
            };
            let (body, body_col) = cur.remainder();
            if body.is_empty() {
                return Err(ScriptDiag::new(
                    line,
                    body_col,
                    "AB021",
                    "expected a comparison",
                ));
            }
            Ok(Some(ScriptCommand::Def {
                kind,
                var,
                body,
                body_col,
            }))
        }
        "assert" => {
            let mut lits: Vec<Lit> = Vec::new();
            while let Some((w, c)) = cur.word() {
                match w.parse::<i32>() {
                    Ok(0) => break,
                    Ok(v) if (v.unsigned_abs() as usize) <= MAX_SCRIPT_VAR => {
                        lits.push(Lit::from_dimacs(v));
                    }
                    Ok(_) => {
                        return Err(ScriptDiag::new(
                            line,
                            c,
                            "AB021",
                            format!("literal `{w}` exceeds the variable limit of {MAX_SCRIPT_VAR}"),
                        ));
                    }
                    Err(_) => {
                        return Err(ScriptDiag::new(
                            line,
                            c,
                            "AB021",
                            format!("invalid literal `{w}`"),
                        ));
                    }
                }
            }
            Ok(Some(ScriptCommand::Assert { lits }))
        }
        other => Err(ScriptDiag::new(
            line,
            cmd_col,
            "AB020",
            format!("unknown session command `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_are_none() {
        assert_eq!(parse_script_line("", 1).unwrap(), None);
        assert_eq!(parse_script_line("   \t ", 1).unwrap(), None);
        assert_eq!(parse_script_line("# a comment", 1).unwrap(), None);
        // Unicode whitespace that `str::trim` strips but ASCII checks miss.
        assert_eq!(parse_script_line("\u{00a0}\u{2003}", 1).unwrap(), None);
    }

    #[test]
    fn simple_commands() {
        assert_eq!(
            parse_script_line("push", 1).unwrap(),
            Some(ScriptCommand::Push)
        );
        assert_eq!(
            parse_script_line("  pop ", 1).unwrap(),
            Some(ScriptCommand::Pop { col: 3 })
        );
        assert_eq!(
            parse_script_line("check", 1).unwrap(),
            Some(ScriptCommand::Check)
        );
    }

    #[test]
    fn var_and_range() {
        assert_eq!(
            parse_script_line("var real x", 1).unwrap(),
            Some(ScriptCommand::Var {
                kind: VarKind::Real,
                name: "x"
            })
        );
        assert_eq!(
            parse_script_line("range x -1 2.5", 1).unwrap(),
            Some(ScriptCommand::Range {
                name: "x",
                name_col: 7,
                lo: -1.0,
                hi: 2.5
            })
        );
    }

    #[test]
    fn nan_and_inverted_ranges_are_diagnostics() {
        assert_eq!(
            parse_script_line("range x nan 1", 1).unwrap_err().code,
            "AB021"
        );
        assert_eq!(
            parse_script_line("range x 0 nan", 1).unwrap_err().code,
            "AB021"
        );
        assert_eq!(
            parse_script_line("range x 2 1", 1).unwrap_err().code,
            "AB021"
        );
        // Infinities with the right order are fine.
        assert!(parse_script_line("range x -inf inf", 1).unwrap().is_some());
    }

    #[test]
    fn def_var_is_capped() {
        assert!(parse_script_line("def int 1 x >= 0", 1).unwrap().is_some());
        let err = parse_script_line("def int 4000000000 x >= 0", 1).unwrap_err();
        assert_eq!(err.code, "AB021");
        assert!(err.message.contains("exceeds"));
        assert_eq!(
            parse_script_line("def int 0 x >= 0", 1).unwrap_err().code,
            "AB021"
        );
    }

    #[test]
    fn assert_literals_are_capped() {
        let cmd = parse_script_line("assert 1 -2 0", 1).unwrap().unwrap();
        match cmd {
            ScriptCommand::Assert { lits } => assert_eq!(lits.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // i32::MIN survives `unsigned_abs` but busts the cap.
        assert_eq!(
            parse_script_line("assert -2147483648 0", 1)
                .unwrap_err()
                .code,
            "AB021"
        );
        assert_eq!(parse_script_line("assert x", 1).unwrap_err().code, "AB021");
    }

    #[test]
    fn unknown_commands_are_ab020() {
        let err = parse_script_line("frobnicate 1 2", 3).unwrap_err();
        assert_eq!(err.code, "AB020");
        assert_eq!((err.line, err.col), (3, 1));
    }
}
