//! ABsolver's extended DIMACS input language (paper Sec. 1.1, Fig. 2).
//!
//! The format is ordinary DIMACS CNF plus *definition* comment lines:
//!
//! ```text
//! p cnf 4 3
//! 1 0
//! -2 3 0
//! 4 0
//! c def int 1 i >= 0
//! c def int 2 2*i + j < 10
//! c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
//! ```
//!
//! `c def <int|real> <v> <lhs> <op> <rhs>` binds Boolean variable `v` to
//! the arithmetic comparison; because definitions live in comment lines,
//! "our format is still understood by any Boolean solver not aware of the
//! extensions". A variable mentioned in any `int` definition is integer.
//!
//! Two reproduction extensions, both also comments:
//! `c range <name> <lo> <hi>` supplies the initial search box used by the
//! interval engine, and `c var <int|real> <name>` pre-declares a variable.
//!
//! Every parse error names the 1-based line and column of the offending
//! token ([`ParseAbError::span`]), and [`parse_spanned`] additionally
//! returns a [`SourceMap`] locating each directive and clause — the
//! static analyzer (`absolver-analyze`) anchors its diagnostics on it.

use crate::problem::{AbProblem, ArithVar, AtomDef, VarKind};
use absolver_linear::CmpOp;
use absolver_logic::dimacs;
use absolver_nonlinear::{Expr, NlConstraint, VarId};
use absolver_num::{Interval, Rational};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A 1-based source position (line and column) in the input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte-based; the input language is ASCII).
    pub col: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// Error parsing the extended DIMACS format. Carries the source position
/// of the offending token whenever one is known (which is every error
/// produced by [`parse`] itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAbError {
    message: String,
    span: Option<Span>,
}

impl ParseAbError {
    fn at(span: Span, message: impl Into<String>) -> ParseAbError {
        ParseAbError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// The source position of the error, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The error description, without the location prefix of `Display`.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based line of the error, when known.
    pub fn line(&self) -> Option<usize> {
        self.span.map(|s| s.line)
    }

    /// 1-based column of the error, when known.
    pub fn column(&self) -> Option<usize> {
        self.span.map(|s| s.col)
    }
}

impl fmt::Display for ParseAbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "AB-problem parse error at {span}: {}", self.message),
            None => write!(f, "AB-problem parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseAbError {}

impl From<dimacs::ParseDimacsError> for ParseAbError {
    fn from(e: dimacs::ParseDimacsError) -> ParseAbError {
        ParseAbError {
            message: e.to_string(),
            span: Some(Span::new(e.line(), e.column())),
        }
    }
}

/// Byte offset of `child` within `parent`; `child` must be a subslice of
/// `parent` (as produced by `split`/`trim`/`strip_prefix`).
fn offset_in(parent: &str, child: &str) -> usize {
    child.as_ptr() as usize - parent.as_ptr() as usize
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(Rational),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Cmp(CmpOp),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Plus => f.write_str("`+`"),
            Token::Minus => f.write_str("`-`"),
            Token::Star => f.write_str("`*`"),
            Token::Slash => f.write_str("`/`"),
            Token::Caret => f.write_str("`^`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Cmp(op) => write!(f, "`{op}`"),
        }
    }
}

/// Tokenizes a constraint body. Each token carries its byte offset within
/// `input`; errors are positioned relative to `base` (the span of the
/// body's first byte in the original file).
fn tokenize(input: &str, base: Span) -> Result<Vec<(Token, usize)>, ParseAbError> {
    let at = |off: usize| Span::new(base.line, base.col + off);
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push((Token::Plus, start));
                i += 1;
            }
            '-' => {
                out.push((Token::Minus, start));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, start));
                i += 1;
            }
            '/' => {
                out.push((Token::Slash, start));
                i += 1;
            }
            '^' => {
                out.push((Token::Caret, start));
                i += 1;
            }
            '(' => {
                out.push((Token::LParen, start));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, start));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Cmp(CmpOp::Le), start));
                    i += 2;
                } else {
                    out.push((Token::Cmp(CmpOp::Lt), start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Cmp(CmpOp::Ge), start));
                    i += 2;
                } else {
                    out.push((Token::Cmp(CmpOp::Gt), start));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push((Token::Cmp(CmpOp::Eq), start));
            }
            '0'..='9' | '.' => {
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                let value: Rational = text.parse().map_err(|_| {
                    ParseAbError::at(at(start), format!("bad numeric literal `{text}`"))
                })?;
                out.push((Token::Number(value), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((Token::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(ParseAbError::at(
                    at(start),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Expression parser (recursive descent)
// ---------------------------------------------------------------------------

struct ExprParser<'a> {
    tokens: &'a [(Token, usize)],
    pos: usize,
    vars: &'a mut VarInterner,
    kind: VarKind,
    /// Span of the body's first byte; token offsets are added to its col.
    base: Span,
    /// Byte length of the body (end-of-input errors point here).
    end: usize,
}

/// Variable interning shared across definitions; tracks kind promotion
/// (mention in any `int` definition makes a variable integer).
#[derive(Debug, Default)]
struct VarInterner {
    names: Vec<String>,
    kinds: Vec<VarKind>,
    ranges: Vec<Interval>,
    by_name: HashMap<String, VarId>,
}

impl VarInterner {
    fn intern(&mut self, name: &str, kind: VarKind) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            if kind == VarKind::Int {
                self.kinds[id] = VarKind::Int;
            }
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.kinds.push(kind);
        self.ranges.push(Interval::ENTIRE);
        self.by_name.insert(name.to_string(), id);
        id
    }
}

const FUNCTIONS: &[&str] = &["sin", "cos", "exp", "ln", "sqrt", "abs"];

/// Renders `Some(token)` / `None` (end of input) for error messages.
fn describe(t: &Option<Token>) -> String {
    match t {
        Some(t) => t.to_string(),
        None => "end of input".to_string(),
    }
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The span of the token at `pos` (or of the end of the body).
    fn span_at(&self, pos: usize) -> Span {
        let off = self.tokens.get(pos).map_or(self.end, |&(_, o)| o);
        Span::new(self.base.line, self.base.col + off)
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseAbError> {
        let here = self.pos;
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            other => Err(ParseAbError::at(
                self.span_at(here),
                format!("expected {t}, found {}", describe(&other)),
            )),
        }
    }

    /// expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<Expr, ParseAbError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    acc = acc + self.term()?;
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    acc = acc - self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    /// term := factor (('*'|'/') factor)*
    fn term(&mut self) -> Result<Expr, ParseAbError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    acc = acc * self.factor()?;
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    acc = acc / self.factor()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    /// factor := '-'* power
    fn factor(&mut self) -> Result<Expr, ParseAbError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            return Ok(-self.factor()?);
        }
        self.power()
    }

    /// power := primary ('^' integer)?
    fn power(&mut self) -> Result<Expr, ParseAbError> {
        let base = self.primary()?;
        if self.peek() == Some(&Token::Caret) {
            self.pos += 1;
            let negative = if self.peek() == Some(&Token::Minus) {
                self.pos += 1;
                true
            } else {
                false
            };
            let here = self.pos;
            match self.next() {
                Some(Token::Number(n)) if n.is_integer() => {
                    let exp = n
                        .numer()
                        .to_i64()
                        .filter(|&e| e.unsigned_abs() <= i32::MAX as u64)
                        .ok_or_else(|| {
                            ParseAbError::at(self.span_at(here), "power exponent out of range")
                        })?;
                    let exp = if negative { -exp } else { exp };
                    Ok(base.pow(exp as i32))
                }
                other => Err(ParseAbError::at(
                    self.span_at(here),
                    format!("expected integer exponent, found {}", describe(&other)),
                )),
            }
        } else {
            Ok(base)
        }
    }

    /// primary := number | func primary | ident | '(' expr ')'
    fn primary(&mut self) -> Result<Expr, ParseAbError> {
        let here = self.pos;
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::constant(n)),
            Some(Token::Ident(name)) => {
                if FUNCTIONS.contains(&name.as_str()) {
                    let arg = self.primary()?;
                    Ok(match name.as_str() {
                        "sin" => arg.sin(),
                        "cos" => arg.cos(),
                        "exp" => arg.exp(),
                        "ln" => arg.ln(),
                        "sqrt" => arg.sqrt(),
                        "abs" => arg.abs(),
                        _ => unreachable!("function list is fixed"),
                    })
                } else {
                    Ok(Expr::var(self.vars.intern(&name, self.kind)))
                }
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            other => Err(ParseAbError::at(
                self.span_at(here),
                format!("expected expression, found {}", describe(&other)),
            )),
        }
    }

    /// comparison := expr cmp expr
    fn comparison(&mut self) -> Result<NlConstraint, ParseAbError> {
        let lhs = self.expr()?;
        let here = self.pos;
        let op = match self.next() {
            Some(Token::Cmp(op)) => op,
            other => {
                return Err(ParseAbError::at(
                    self.span_at(here),
                    format!("expected comparison operator, found {}", describe(&other)),
                ))
            }
        };
        let rhs = self.expr()?;
        if self.pos != self.tokens.len() {
            return Err(ParseAbError::at(
                self.span_at(self.pos),
                "trailing tokens after comparison",
            ));
        }
        // Normalise: keep a constant RHS when possible, else move everything
        // to the left-hand side.
        Ok(match rhs {
            Expr::Const(c) => NlConstraint::new(lhs.simplify(), op, c),
            rhs => NlConstraint::new((lhs - rhs).simplify(), op, Rational::zero()),
        })
    }
}

// ---------------------------------------------------------------------------
// File-level parsing
// ---------------------------------------------------------------------------

/// Levenshtein edit distance between two short ASCII words.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// If the first word of a comment is one typo away from a directive
/// keyword (`def`, `range`, `var`) — but did not parse as one — returns
/// that keyword. Exact directives are dispatched before this runs, so a
/// distance-0 match here means a keyword with no arguments.
fn near_miss_directive(comment: &str) -> Option<&'static str> {
    let first = comment.split_whitespace().next()?;
    if first.len() > 8 {
        return None;
    }
    let lower = first.to_ascii_lowercase();
    ["def", "range", "var"]
        .into_iter()
        .find(|kw| edit_distance(&lower, kw) <= 1)
}

/// Source location of one `def` directive line: which Boolean variable it
/// binds, which constraint (index into the definition's conjunction) it
/// contributed, and where it sits in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// 0-based index of the bound Boolean variable.
    pub var: u32,
    /// Index of the contributed constraint within the definition's
    /// conjunction (`AtomDef::constraints`).
    pub constraint: usize,
    /// Position of the directive.
    pub span: Span,
}

/// Source location and raw bounds of one `range` directive line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeSite {
    /// The arithmetic variable the range applies to.
    pub var: VarId,
    /// Lower bound as written.
    pub lo: f64,
    /// Upper bound as written.
    pub hi: f64,
    /// Position of the directive.
    pub span: Span,
}

/// Source locations collected during parsing, anchoring every directive
/// and clause of the input. Produced by [`parse_spanned`]; the static
/// analyzer uses it to attach precise spans to its diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceMap {
    /// One entry per `def` directive line, in input order.
    pub def_sites: Vec<DefSite>,
    /// One entry per `range` directive line, in input order.
    pub range_sites: Vec<RangeSite>,
    /// One entry per `var` directive line, in input order.
    pub var_sites: Vec<(VarId, Span)>,
    /// One span per CNF clause (the line where the clause starts).
    pub clause_spans: Vec<Span>,
    /// The variable count declared in the `p cnf` header, if any.
    pub declared_vars: Option<usize>,
}

/// Parses the extended DIMACS format into an [`AbProblem`].
///
/// # Errors
///
/// Returns [`ParseAbError`] on malformed DIMACS structure, definition
/// syntax errors, out-of-range Boolean variables, or duplicate definitions.
/// Every error names the line and column of the offending token.
pub fn parse(text: &str) -> Result<AbProblem, ParseAbError> {
    parse_spanned(text).map(|(problem, _)| problem)
}

/// Parses one arithmetic comparison (the body of a `def` directive)
/// against an existing variable table — the workhorse of the session
/// script mode, where definitions arrive one line at a time instead of in
/// one file.
///
/// Returns the parsed constraint plus the variables it mentions that are
/// *not* in `existing`, as `(name, kind)` pairs in id order (their ids
/// continue from `existing.len()`).
///
/// # Errors
///
/// Returns [`ParseAbError`] (spans relative to `base`) on syntax errors,
/// or when an `int` definition mentions an existing `real` variable —
/// sessions cannot retroactively promote a variable's kind the way
/// whole-file parsing does.
pub fn parse_session_constraint(
    body: &str,
    kind: VarKind,
    existing: &[ArithVar],
    base: Span,
) -> Result<(NlConstraint, Vec<(String, VarKind)>), ParseAbError> {
    let mut interner = VarInterner::default();
    for v in existing {
        interner.names.push(v.name.clone());
        interner.kinds.push(v.kind);
        interner.ranges.push(v.range);
        interner
            .by_name
            .insert(v.name.clone(), interner.names.len() - 1);
    }
    let tokens = tokenize(body, base)?;
    let end = body.len();
    let mut parser = ExprParser {
        tokens: &tokens,
        pos: 0,
        vars: &mut interner,
        kind,
        base,
        end,
    };
    let constraint = parser.comparison()?;
    for (id, v) in existing.iter().enumerate() {
        if interner.kinds[id] != v.kind {
            return Err(ParseAbError::at(
                base,
                format!(
                    "variable `{}` is declared real but is mentioned in an int definition",
                    v.name
                ),
            ));
        }
    }
    let fresh = existing.len();
    let new_vars = interner
        .names
        .iter()
        .zip(&interner.kinds)
        .skip(fresh)
        .map(|(n, &k)| (n.clone(), k))
        .collect();
    Ok((constraint, new_vars))
}

/// Like [`parse`], but additionally returns the [`SourceMap`] locating
/// every directive and clause of the input.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_spanned(text: &str) -> Result<(AbProblem, SourceMap), ParseAbError> {
    let file = dimacs::parse(text)?;
    let mut cnf = file.cnf;
    let mut interner = VarInterner::default();
    let mut defs: std::collections::BTreeMap<u32, AtomDef> = Default::default();
    let mut map = SourceMap {
        clause_spans: file.clause_lines.iter().map(|&l| Span::new(l, 1)).collect(),
        declared_vars: file.declared_vars,
        ..Default::default()
    };

    for (comment, &(line, ccol)) in file.comments.iter().zip(&file.comment_spans) {
        // Position of a subslice of `comment` in the original input.
        let at = |piece: &str| Span::new(line, ccol + offset_in(comment, piece));
        let trimmed = comment.trim();
        let line_span = at(trimmed);
        let end_span = Span::new(line, ccol + offset_in(comment, trimmed) + trimmed.len());
        if let Some(rest) = trimmed.strip_prefix("def ") {
            let mut words = rest.splitn(3, char::is_whitespace);
            let kind_word = words.next();
            let kind = match kind_word {
                Some("int") => VarKind::Int,
                Some("real") => VarKind::Real,
                other => {
                    return Err(ParseAbError::at(
                        other.map_or(end_span, at),
                        match other {
                            Some(word) => {
                                format!("expected `int` or `real` in definition, found `{word}`")
                            }
                            None => "expected `int` or `real` in definition".to_string(),
                        },
                    ))
                }
            };
            let var_word = words.next();
            let var_num: u32 = var_word
                .and_then(|w| w.parse().ok())
                .filter(|&v| v > 0)
                .ok_or_else(|| {
                    ParseAbError::at(
                        var_word.map_or(end_span, at),
                        format!("bad Boolean variable in definition `{rest}`"),
                    )
                })?;
            let body = words.next().ok_or_else(|| {
                ParseAbError::at(end_span, format!("missing constraint in `{rest}`"))
            })?;
            let base = at(body);
            let tokens = tokenize(body, base)?;
            let mut parser = ExprParser {
                tokens: &tokens,
                pos: 0,
                vars: &mut interner,
                kind,
                base,
                end: body.len(),
            };
            let constraint = parser.comparison()?;
            let var_index = var_num - 1;
            if cnf.num_vars() <= var_index as usize {
                // Definitions may mention variables beyond the clause set.
                while cnf.num_vars() <= var_index as usize {
                    cnf.fresh_var();
                }
            }
            // Repeated `def` lines on the same variable conjoin, exactly
            // like the two `def int 1 …` lines of the paper's Fig. 2.
            let def = defs.entry(var_index).or_default();
            def.constraints.push(constraint);
            map.def_sites.push(DefSite {
                var: var_index,
                constraint: def.constraints.len() - 1,
                span: line_span,
            });
        } else if let Some(rest) = trimmed.strip_prefix("range ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(ParseAbError::at(
                    line_span,
                    format!("bad range line `{rest}`"),
                ));
            }
            let id = interner.by_name.get(parts[0]).copied().ok_or_else(|| {
                ParseAbError::at(
                    at(parts[0]),
                    format!(
                        "range for unknown variable `{}` (ranges must follow definitions)",
                        parts[0]
                    ),
                )
            })?;
            let lo: f64 = parts[1].parse().map_err(|_| {
                ParseAbError::at(at(parts[1]), format!("bad range bound `{}`", parts[1]))
            })?;
            let hi: f64 = parts[2].parse().map_err(|_| {
                ParseAbError::at(at(parts[2]), format!("bad range bound `{}`", parts[2]))
            })?;
            if lo > hi || lo.is_nan() || hi.is_nan() {
                return Err(ParseAbError::at(
                    at(parts[1]),
                    format!("empty range `{rest}`"),
                ));
            }
            interner.ranges[id] = interner.ranges[id].intersect(Interval::new(lo, hi));
            map.range_sites.push(RangeSite {
                var: id,
                lo,
                hi,
                span: line_span,
            });
        } else if let Some(rest) = trimmed.strip_prefix("var ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 2 {
                return Err(ParseAbError::at(
                    line_span,
                    format!("bad var line `{rest}`"),
                ));
            }
            let kind = match parts[0] {
                "int" => VarKind::Int,
                "real" => VarKind::Real,
                other => {
                    return Err(ParseAbError::at(
                        at(parts[0]),
                        format!("expected `int` or `real` in var line, found `{other}`"),
                    ))
                }
            };
            let id = interner.intern(parts[1], kind);
            map.var_sites.push((id, line_span));
        } else if let Some(directive) = near_miss_directive(trimmed) {
            // A comment whose first word is one typo away from a directive
            // keyword is almost certainly a misspelled directive, and
            // silently ignoring it would silently drop a constraint.
            let first = trimmed.split_whitespace().next().unwrap_or(trimmed);
            return Err(ParseAbError::at(
                at(first),
                format!(
                    "comment line `{trimmed}` looks like a misspelled `{directive}` directive \
                     (write `c {directive} …`, or reword the comment)"
                ),
            ));
        }
        // Other comments are ignored, as any plain SAT solver would.
    }

    let vars: Vec<ArithVar> = interner
        .names
        .iter()
        .zip(&interner.kinds)
        .zip(&interner.ranges)
        .map(|((name, &kind), &range)| ArithVar {
            name: name.clone(),
            kind,
            range,
        })
        .collect();

    Ok((
        AbProblem {
            cnf,
            defs,
            vars,
            by_name: interner.by_name,
        },
        map,
    ))
}

impl FromStr for AbProblem {
    type Err = ParseAbError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Formats an expression using the problem's variable names (instead of the
/// positional `v0, v1, …` of [`Expr`]'s `Display`).
pub fn format_expr(expr: &Expr, names: &[String]) -> String {
    fn go(e: &Expr, names: &[String], min_prec: u8, out: &mut String) {
        let prec = match e {
            Expr::Add(..) | Expr::Sub(..) => 1,
            Expr::Mul(..) | Expr::Div(..) => 2,
            // Negative constants print with a leading minus, so they bind
            // like a negation (`-4 ^ 2` must not re-parse as `-(4^2)`).
            Expr::Neg(_) => 3,
            Expr::Const(c) if c.is_negative() => 3,
            // `^` does not chain in the grammar, so a Pow base must sit
            // strictly above it (atoms are 5).
            Expr::Pow(..) => 4,
            _ => 5,
        };
        let paren = prec < min_prec;
        if paren {
            out.push_str("( ");
        }
        match e {
            Expr::Const(c) => {
                if c.is_integer() {
                    out.push_str(&c.to_string());
                } else {
                    // Prefer decimal when exact, else a/b.
                    out.push_str(&rational_to_source(c));
                }
            }
            Expr::Var(v) => out.push_str(names.get(*v).map(String::as_str).unwrap_or("_unknown_")),
            Expr::Neg(a) => {
                out.push('-');
                go(a, names, 4, out);
            }
            Expr::Add(a, b) => {
                go(a, names, 1, out);
                out.push_str(" + ");
                go(b, names, 2, out);
            }
            Expr::Sub(a, b) => {
                go(a, names, 1, out);
                out.push_str(" - ");
                go(b, names, 2, out);
            }
            Expr::Mul(a, b) => {
                go(a, names, 2, out);
                out.push_str(" * ");
                go(b, names, 3, out);
            }
            Expr::Div(a, b) => {
                go(a, names, 2, out);
                out.push_str(" / ");
                go(b, names, 3, out);
            }
            Expr::Pow(a, n) => {
                go(a, names, 5, out);
                out.push_str(&format!(" ^ {n}"));
            }
            Expr::Sin(a) => fun("sin", a, names, out),
            Expr::Cos(a) => fun("cos", a, names, out),
            Expr::Exp(a) => fun("exp", a, names, out),
            Expr::Ln(a) => fun("ln", a, names, out),
            Expr::Sqrt(a) => fun("sqrt", a, names, out),
            Expr::Abs(a) => fun("abs", a, names, out),
        }
        if paren {
            out.push_str(" )");
        }
    }
    fn fun(name: &str, arg: &Expr, names: &[String], out: &mut String) {
        out.push_str(name);
        out.push_str(" ( ");
        go(arg, names, 0, out);
        out.push_str(" )");
    }
    let mut s = String::new();
    go(expr, names, 0, &mut s);
    s
}

/// Renders a rational as source text: a decimal literal when the
/// denominator is of the form `2ᵃ·5ᵇ` (finite decimal expansion), else the
/// always-correct division form `a / b`.
fn rational_to_source(q: &Rational) -> String {
    use absolver_num::BigInt;
    if q.is_integer() {
        return q.to_string();
    }
    // Count factors of 2 and 5 in the denominator.
    let mut rest = q.denom().clone();
    let (two, five) = (BigInt::from(2u64), BigInt::from(5u64));
    let mut a = 0u32;
    let mut b = 0u32;
    loop {
        let (d, r) = rest.div_rem(&two);
        if r.is_zero() {
            rest = d;
            a += 1;
        } else {
            break;
        }
    }
    loop {
        let (d, r) = rest.div_rem(&five);
        if r.is_zero() {
            rest = d;
            b += 1;
        } else {
            break;
        }
    }
    if rest.is_one() && a.max(b) <= 30 {
        let digits = a.max(b);
        let scale = BigInt::from(10u64).pow(digits);
        let scaled = q.numer() * &scale / q.denom();
        let neg = scaled.is_negative();
        let s = scaled.abs().to_string();
        let s = format!("{:0>width$}", s, width = digits as usize + 1);
        let (int_part, frac_part) = s.split_at(s.len() - digits as usize);
        format!("{}{}.{}", if neg { "-" } else { "" }, int_part, frac_part)
    } else {
        // Division form: parenthesised, because the text embeds a `/`
        // operator that must not associate with surrounding factors.
        format!("( {} / {} )", q.numer(), q.denom())
    }
}

/// Serialises a problem in the extended DIMACS format. The output parses
/// back to an equivalent problem (round-trip).
pub fn write(problem: &AbProblem) -> String {
    let names: Vec<String> = problem
        .arith_vars()
        .iter()
        .map(|v| v.name.clone())
        .collect();
    let mut comments = Vec::new();
    // Pre-declare variables so kinds and ranges survive even for variables
    // whose first definition would infer differently.
    for v in problem.arith_vars() {
        comments.push(format!("var {} {}", v.kind, v.name));
    }
    for (var, def) in problem.defs() {
        for constraint in &def.constraints {
            let kind = constraint
                .variables()
                .iter()
                .map(|&v| problem.arith_vars()[v].kind)
                .fold(VarKind::Int, |acc, k| {
                    if k == VarKind::Real {
                        VarKind::Real
                    } else {
                        acc
                    }
                });
            comments.push(format!(
                "def {} {} {} {} {}",
                kind,
                var.index() + 1,
                format_expr(&constraint.expr(), &names),
                constraint.op,
                rational_to_source_rhs(&constraint.rhs),
            ));
        }
    }
    for v in problem.arith_vars() {
        if v.range != Interval::ENTIRE {
            comments.push(format!(
                "range {} {} {}",
                v.name,
                v.range.lo(),
                v.range.hi()
            ));
        }
    }
    dimacs::write(problem.cnf(), &comments)
}

fn rational_to_source_rhs(q: &Rational) -> String {
    if q.is_integer() {
        q.to_string()
    } else {
        format!("( {} / {} )", q.numer(), q.denom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarKind;
    use absolver_linear::CmpOp;

    const PAPER_EXAMPLE: &str = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
";

    #[test]
    fn parses_paper_example() {
        // Fig. 2 verbatim: variable 1 carries a two-constraint conjunction.
        let p: AbProblem = PAPER_EXAMPLE.parse().unwrap();
        assert_eq!(p.cnf().num_vars(), 4);
        assert_eq!(p.cnf().len(), 3);
        assert_eq!(p.num_defs(), 4);
        assert_eq!(p.num_constraints(), 5);
        assert_eq!(p.num_linear(), 4);
        assert_eq!(p.num_nonlinear(), 1);
        assert_eq!(
            p.def(absolver_logic::Var::new(0))
                .unwrap()
                .constraints
                .len(),
            2
        );
        // i, j are int; a, x, y real.
        let vars = p.arith_vars();
        let kind = |n: &str| vars[p.arith_var(n).unwrap()].kind;
        assert_eq!(kind("i"), VarKind::Int);
        assert_eq!(kind("j"), VarKind::Int);
        assert_eq!(kind("a"), VarKind::Real);
        assert_eq!(kind("x"), VarKind::Real);
        assert_eq!(kind("y"), VarKind::Real);
    }

    #[test]
    fn source_map_locates_directives_and_clauses() {
        let (p, map) = parse_spanned(PAPER_EXAMPLE).unwrap();
        assert_eq!(p.num_defs(), 4);
        assert_eq!(map.declared_vars, Some(4));
        assert_eq!(map.clause_spans.len(), 3);
        assert_eq!(map.clause_spans[0], Span::new(2, 1));
        assert_eq!(map.clause_spans[2], Span::new(4, 1));
        assert_eq!(map.def_sites.len(), 5);
        // Line 5 `c def int 1 i >= 0`: directive text starts at column 3.
        assert_eq!(map.def_sites[0].span, Span::new(5, 3));
        assert_eq!(map.def_sites[0].var, 0);
        assert_eq!(map.def_sites[0].constraint, 0);
        // The second def on variable 1 contributes constraint index 1.
        assert_eq!(map.def_sites[1].var, 0);
        assert_eq!(map.def_sites[1].constraint, 1);
        assert!(map.range_sites.is_empty());
        assert!(map.var_sites.is_empty());
    }

    #[test]
    fn source_map_records_ranges_and_vars() {
        let text = "p cnf 1 1\n1 0\nc var real x\nc range x -2 7\n";
        let (p, map) = parse_spanned(text).unwrap();
        let x = p.arith_var("x").unwrap();
        assert_eq!(map.var_sites, vec![(x, Span::new(3, 3))]);
        assert_eq!(map.range_sites.len(), 1);
        let site = &map.range_sites[0];
        assert_eq!((site.var, site.lo, site.hi), (x, -2.0, 7.0));
        assert_eq!(site.span, Span::new(4, 3));
    }

    #[test]
    fn parses_constraint_shapes() {
        let p: AbProblem = "p cnf 3 1\n1 2 3 0\nc def real 1 x^2 + y^2 <= 1\nc def real 2 sin ( x ) > 0.5\nc def real 3 x = y\n"
            .parse()
            .unwrap();
        let defs: Vec<_> = p.defs().collect();
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[0].1.constraints[0].op, CmpOp::Le);
        assert_eq!(defs[1].1.constraints[0].op, CmpOp::Gt);
        assert_eq!(defs[2].1.constraints[0].op, CmpOp::Eq);
        assert!(!defs[0].1.constraints[0].is_linear());
    }

    #[test]
    fn nonconstant_rhs_is_normalised() {
        let p: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x + 1 <= y\n".parse().unwrap();
        let (_, def) = p.defs().next().unwrap();
        let constraint = &def.constraints[0];
        // x + 1 ≤ y becomes (x + 1 − y) ≤ 0.
        assert_eq!(constraint.rhs, Rational::zero());
        assert!(constraint.is_linear());
        let (lin, c) = constraint.to_affine().unwrap();
        assert_eq!(*c, Rational::one());
        assert_eq!(lin.coeff(p.arith_var("x").unwrap()), Rational::one());
        assert_eq!(lin.coeff(p.arith_var("y").unwrap()), Rational::from_int(-1));
    }

    #[test]
    fn ranges_and_var_declarations() {
        let text = "p cnf 1 1\n1 0\nc var real speed\nc def real 1 speed ^ 2 <= 400\nc range speed -20 20\n";
        let p: AbProblem = text.parse().unwrap();
        let v = p.arith_var("speed").unwrap();
        assert_eq!(p.arith_vars()[v].range, Interval::new(-20.0, 20.0));
        assert_eq!(p.arith_vars()[v].kind, VarKind::Real);
    }

    #[test]
    fn int_promotion() {
        // x first appears in a real def, then in an int def → Int overall.
        let text = "p cnf 2 1\n1 2 0\nc def real 1 x * x >= 1\nc def int 2 x <= 3\n";
        let p: AbProblem = text.parse().unwrap();
        assert_eq!(p.arith_vars()[p.arith_var("x").unwrap()].kind, VarKind::Int);
    }

    #[test]
    fn def_can_extend_variable_count() {
        let text = "p cnf 1 1\n1 0\nc def int 9 k >= 1\n";
        let p: AbProblem = text.parse().unwrap();
        assert_eq!(p.cnf().num_vars(), 9);
        assert!(p.def(absolver_logic::Var::new(8)).is_some());
    }

    #[test]
    fn parse_errors() {
        // Bad keyword.
        assert!("p cnf 1 1\n1 0\nc def bool 1 x >= 0\n"
            .parse::<AbProblem>()
            .is_err());
        // Bad variable number.
        assert!("p cnf 1 1\n1 0\nc def int 0 x >= 0\n"
            .parse::<AbProblem>()
            .is_err());
        // Missing operator.
        assert!("p cnf 1 1\n1 0\nc def int 1 x + 1\n"
            .parse::<AbProblem>()
            .is_err());
        // Trailing garbage.
        assert!("p cnf 1 1\n1 0\nc def int 1 x >= 0 0\n"
            .parse::<AbProblem>()
            .is_err());
        // Unbalanced parenthesis.
        assert!("p cnf 1 1\n1 0\nc def int 1 ( x >= 0\n"
            .parse::<AbProblem>()
            .is_err());
        // Unknown character.
        assert!("p cnf 1 1\n1 0\nc def int 1 x ? 0\n"
            .parse::<AbProblem>()
            .is_err());
        // Range before definition of the variable.
        assert!("p cnf 1 1\n1 0\nc range x 0 1\n"
            .parse::<AbProblem>()
            .is_err());
        // Empty range.
        assert!("p cnf 1 1\n1 0\nc var real x\nc range x 2 1\n"
            .parse::<AbProblem>()
            .is_err());
    }

    /// One regression test per error variant: every parse error must name
    /// the exact line and column of the offending token.
    #[test]
    fn parse_error_spans_name_line_and_column() {
        let span_of = |text: &str| {
            let err = text.parse::<AbProblem>().unwrap_err();
            let span = err
                .span()
                .unwrap_or_else(|| panic!("error for {text:?} has no span: {err}"));
            assert!(
                err.to_string().contains("line"),
                "Display must show the span: {err}"
            );
            (span.line, span.col)
        };
        // --- DIMACS-level errors (column via ParseDimacsError) ---
        // Duplicate problem line (line 2, at the `p`).
        assert_eq!(span_of("p cnf 1 1\np cnf 1 1\n1 0\n"), (2, 1));
        // Wrong format keyword: `dnf` at column 3.
        assert_eq!(span_of("p dnf 1 1\n1 0\n"), (1, 3));
        // Bad variable count at column 7.
        assert_eq!(span_of("p cnf x 1\n1 0\n"), (1, 7));
        // Bad clause count at column 9.
        assert_eq!(span_of("p cnf 1 y\n1 0\n"), (1, 9));
        // Invalid clause literal at line 2, column 3.
        assert_eq!(span_of("p cnf 1 1\n1 a 0\n"), (2, 3));
        // --- Directive-level errors ---
        // `c def bool …`: bad kind keyword at column 7 of line 3.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def bool 1 x >= 0\n"), (3, 7));
        // `c def int 0 …`: bad Boolean variable number at column 11.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 0 x >= 0\n"), (3, 11));
        // Missing constraint body: reported at the end of the directive.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1\n"), (3, 12));
        // Bad numeric literal `1.2.3` at column 13.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 1.2.3 >= 0\n"), (3, 13));
        // Unexpected character `?` at column 15.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 x ? 0\n"), (3, 15));
        // Power exponent out of range (the oversized number, column 17).
        assert_eq!(
            span_of("p cnf 1 1\n1 0\nc def int 1 x ^ 99999999999999999999 >= 0\n"),
            (3, 17)
        );
        // Non-integer exponent (`y`, column 17).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 x ^ y >= 0\n"), (3, 17));
        // Unbalanced parenthesis: `expected )` at the `>=` (column 17).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 ( x >= 0\n"), (3, 17));
        // `expected expression` at the dangling `>=` (column 17).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 x + >= 0\n"), (3, 17));
        // Missing comparison operator: reported at end of body (column 18).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 x + 1\n"), (3, 18));
        // Trailing tokens after the comparison (second `0`, column 20).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc def int 1 x >= 0 0\n"), (3, 20));
        // --- range/var directive errors ---
        // Wrong arity: whole directive flagged (column 3).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc range x 0\n"), (3, 3));
        // Unknown range variable `x` at column 9.
        assert_eq!(span_of("p cnf 1 1\n1 0\nc range x 0 1\n"), (3, 9));
        // Bad lower bound `lo` at column 11.
        assert_eq!(
            span_of("p cnf 1 1\n1 0\nc var real x\nc range x lo 1\n"),
            (4, 11)
        );
        // Bad upper bound `hi` at column 13.
        assert_eq!(
            span_of("p cnf 1 1\n1 0\nc var real x\nc range x 0 hi\n"),
            (4, 13)
        );
        // Empty range: flagged at the lower bound (column 11).
        assert_eq!(
            span_of("p cnf 1 1\n1 0\nc var real x\nc range x 2 1\n"),
            (4, 11)
        );
        // Bad var line arity (column 3).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc var real\n"), (3, 3));
        // Bad kind in var line (`bool`, column 7).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc var bool x\n"), (3, 7));
        // Near-miss directive: first word flagged (column 3).
        assert_eq!(span_of("p cnf 1 1\n1 0\nc dff int 1 i >= 0\n"), (3, 3));
    }

    #[test]
    fn power_and_unary_minus() {
        let p: AbProblem = "p cnf 1 1\n1 0\nc def real 1 -x^2 + --y <= -1.5\n"
            .parse()
            .unwrap();
        let (_, def) = p.defs().next().unwrap();
        let constraint = &def.constraints[0];
        let x = p.arith_var("x").unwrap();
        let y = p.arith_var("y").unwrap();
        let mut point = vec![0.0; 2];
        point[x] = 2.0;
        point[y] = 1.0;
        // −(2²) + 1 = −3 ≤ −1.5 holds.
        assert!(constraint.eval(&point));
        point[y] = 3.0;
        // −4 + 3 = −1 ≤ −1.5 fails.
        assert!(!constraint.eval(&point));
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\n1 -2 0\n3 0\nc def int 1 i + 2 * j <= 7\nc def real 2 x * y > 1\nc def real 3 sin ( x ) >= 0.5\nc range x -10 10\n";
        let p1: AbProblem = text.parse().unwrap();
        let rendered = write(&p1);
        let p2: AbProblem = rendered.parse().unwrap();
        assert_eq!(p1.cnf(), p2.cnf());
        assert_eq!(p1.num_defs(), p2.num_defs());
        assert_eq!(p1.arith_vars().len(), p2.arith_vars().len());
        // Semantics preserved: same evaluation on sample points.
        let sample = vec![1.0, 2.0, 0.7];
        for ((_, d1), (_, d2)) in p1.defs().zip(p2.defs()) {
            for (c1, c2) in d1.constraints.iter().zip(&d2.constraints) {
                assert_eq!(c1.eval(&sample), c2.eval(&sample));
            }
        }
        // Ranges preserved.
        let x1 = p1.arith_var("x").unwrap();
        let x2 = p2.arith_var("x").unwrap();
        assert_eq!(p1.arith_vars()[x1].range, p2.arith_vars()[x2].range);
    }

    #[test]
    fn tokenizer_handles_dense_and_spaced_input() {
        let dense: AbProblem = "p cnf 1 1\n1 0\nc def int 1 2*i+j<10\n".parse().unwrap();
        let spaced: AbProblem = "p cnf 1 1\n1 0\nc def int 1 2 * i + j < 10\n"
            .parse()
            .unwrap();
        let (_, d1) = dense.defs().next().unwrap();
        let (_, d2) = spaced.defs().next().unwrap();
        for p in [[0.0, 0.0], [4.0, 1.0], [5.0, 0.0], [4.5, 1.0]] {
            assert_eq!(d1.constraints[0].eval(&p), d2.constraints[0].eval(&p));
        }
    }

    #[test]
    fn near_miss_directives_are_rejected() {
        // A misspelled `def` would previously vanish as a plain comment,
        // silently dropping the constraint it carries.
        for line in [
            "c dff int 1 i >= 0",
            "c def\n",
            "c Def int 1 i >= 0",
            "c rnge x -10 10",
            "c vr int i",
            "c vars int i",
        ] {
            let text = format!("p cnf 1 1\n1 0\n{line}\n");
            let err = text.parse::<AbProblem>().unwrap_err();
            assert!(
                err.to_string().contains("misspelled"),
                "`{line}` must be rejected as a near-miss directive, got: {err}"
            );
        }
    }

    #[test]
    fn misspelled_kind_inside_def_is_rejected() {
        let text = "p cnf 1 1\n1 0\nc def imt 1 i >= 0\n";
        assert!(text.parse::<AbProblem>().is_err());
    }

    #[test]
    fn ordinary_comments_still_ignored() {
        for line in [
            "c this is a free-form comment",
            "c generated by absolver",
            "c definitely not a directive",
            "c variable ordering heuristic notes",
        ] {
            let text = format!("p cnf 1 1\n1 0\n{line}\n");
            assert!(
                text.parse::<AbProblem>().is_ok(),
                "`{line}` is prose, not a near-miss directive"
            );
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("def", "def"), 0);
        assert_eq!(edit_distance("dff", "def"), 1);
        assert_eq!(edit_distance("rnge", "range"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "var"), 3);
    }
}
