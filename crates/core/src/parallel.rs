//! Parallel solving: portfolio and cube-and-conquer on `std::thread`.
//!
//! Two strategies over the sequential [`Orchestrator`] control loop:
//!
//! * **Portfolio** — `jobs` diversified solver stacks (Boolean backend ×
//!   nonlinear backend × decision-phase seed) race on the *same* problem;
//!   the first definitive verdict (Sat or Unsat) wins and cancels the
//!   rest through a shared [`AtomicBool`] token. Sat and Unsat cannot
//!   disagree between shards, so the verdict is deterministic even when
//!   the winning shard is not.
//! * **Cube-and-conquer** — the `k` highest-activity atom variables
//!   (measured by a budgeted CDCL probe) split the search space into up
//!   to `2^k` *cubes*; shards solve cubes as assumption sets via
//!   [`Orchestrator::solve_under`] and exchange theory-conflict clauses
//!   over [`std::sync::mpsc`] channels. A cube's Unsat means
//!   *unsatisfiable under that cube*; the problem is Unsat only once
//!   every cube is refuted.
//!
//! Backends are trait objects and not `Send`, so each shard builds its
//! own solver stack inside its thread; only the plain-data [`AbProblem`]
//! and the atomic token cross thread boundaries. Cancellation is
//! cooperative: the token is polled at the top of every Boolean
//! iteration, at every linear branch-and-bound node, and every few dozen
//! boxes/steps inside the nonlinear engines, so even a shard stuck deep
//! in a large nonlinear budget observes it within a bounded number of
//! iterations.

use crate::backends::{
    CascadeNonlinear, CdclBoolean, IntervalNonlinear, PenaltyNonlinear, RestartingBoolean,
    SimplexLinear,
};
use crate::orchestrator::{Orchestrator, OrchestratorOptions, Outcome, SolveError, TimedLemma};
use crate::problem::{AbModel, AbProblem};
use crate::structure::Partition;
use absolver_logic::{Lit, Var};
use absolver_sat::Solver;
use absolver_trace::{ShardSink, TraceEvent, TraceSink};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How to split work between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Diversified configurations race on the whole problem;
    /// first definitive verdict wins.
    Portfolio,
    /// Cube-and-conquer: partition the search space on high-activity
    /// atoms and solve each cube under assumptions.
    Cubes,
}

impl fmt::Display for ParallelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelStrategy::Portfolio => write!(f, "portfolio"),
            ParallelStrategy::Cubes => write!(f, "cubes"),
        }
    }
}

impl std::str::FromStr for ParallelStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "portfolio" => Ok(ParallelStrategy::Portfolio),
            "cubes" => Ok(ParallelStrategy::Cubes),
            other => Err(format!(
                "unknown strategy '{other}' (expected portfolio|cubes)"
            )),
        }
    }
}

/// Configuration of a [`Orchestrator::solve_parallel`] run.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Number of worker threads (shards). `0` is treated as `1`.
    pub jobs: usize,
    /// Work-splitting strategy.
    pub strategy: ParallelStrategy,
    /// Deterministic mode: cubes are assigned round-robin by shard index
    /// instead of through a shared work queue, so each shard solves an
    /// input-determined cube set regardless of scheduling.
    pub deterministic: bool,
    /// Number of variables to cube on (`Cubes` strategy); `0` picks
    /// automatically from the number of jobs and available atoms.
    pub cube_vars: usize,
    /// Exchange theory-conflict clauses between cube shards.
    pub share_clauses: bool,
    /// Control-loop options every shard starts from (the portfolio
    /// diversifies the *backends*, not these budgets). A `time_limit`
    /// here becomes one wall-clock deadline for the whole parallel call,
    /// shared by all shards and cubes.
    pub base: OrchestratorOptions,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: 2,
            strategy: ParallelStrategy::Portfolio,
            deterministic: false,
            cube_vars: 0,
            share_clauses: true,
            base: OrchestratorOptions::default(),
        }
    }
}

/// Per-shard accounting of a parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Cubes this shard picked up (1 for portfolio shards).
    pub cubes_solved: usize,
    /// Boolean models examined, summed over the shard's cubes.
    pub boolean_iterations: u64,
    /// Theory checks performed.
    pub theory_checks: u64,
    /// Theory verdicts answered from the shard's verdict cache.
    pub theory_cache_hits: u64,
    /// Theory-cache lookups that fell through to a real check.
    pub theory_cache_misses: u64,
    /// Simplex checks that started from a warm tableau.
    pub simplex_warm_starts: u64,
    /// Blocking clauses fed back.
    pub conflicts_fed_back: u64,
    /// Theory-conflict clauses this shard exported to siblings.
    pub clauses_shared: u64,
    /// Clauses this shard imported from siblings.
    pub clauses_imported: u64,
    /// Summed transport latency of the clauses this shard imported.
    pub share_latency: Duration,
    /// Whether the shard was stopped by the cancellation token.
    pub cancelled: bool,
    /// Whether the shard hit the wall-clock deadline.
    pub timed_out: bool,
}

/// Aggregated statistics of a parallel run.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Cubes generated (0 for portfolio).
    pub cubes: usize,
    /// Independent connected components solved on separate shards
    /// (0 when the run used a cube or portfolio split instead).
    pub components: usize,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStats>,
    /// Index of the shard that produced the winning verdict, if any
    /// shard won outright.
    pub winner: Option<usize>,
    /// Theory-conflict clauses exported across all shards.
    pub clauses_shared: u64,
    /// Clauses imported across all shards.
    pub clauses_imported: u64,
    /// Summed lemma transport latency across all shards.
    pub share_latency: Duration,
    /// Longest time any losing shard took to observe the cancellation
    /// token after it was raised.
    pub cancel_latency: Option<Duration>,
    /// Whether the run hit the wall-clock deadline.
    pub timed_out: bool,
    /// Wall-clock time of the whole parallel call.
    pub elapsed: Duration,
}

impl fmt::Display for ParallelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let iterations: u64 = self.shards.iter().map(|s| s.boolean_iterations).sum();
        write!(
            f,
            "jobs={} cubes={} iterations={} shared={} imported={} winner={} elapsed={:?}",
            self.jobs,
            self.cubes,
            iterations,
            self.clauses_shared,
            self.clauses_imported,
            match self.winner {
                Some(i) => i.to_string(),
                None => "-".to_string(),
            },
            self.elapsed,
        )?;
        if self.components > 0 {
            write!(f, " components={}", self.components)?;
        }
        if let Some(latency) = self.cancel_latency {
            write!(f, " cancel_latency={latency:?}")?;
        }
        Ok(())
    }
}

/// What one shard brought home.
struct ShardReport {
    shard: usize,
    result: Result<Outcome, SolveError>,
    stats: ShardStats,
    /// How long after the token was raised this shard noticed, if it was
    /// cancelled.
    latency: Option<Duration>,
}

/// First-verdict bookkeeping shared by all shards.
struct WinnerBoard {
    cancel: Arc<AtomicBool>,
    state: Mutex<Option<(usize, Instant)>>,
}

impl WinnerBoard {
    fn new() -> WinnerBoard {
        WinnerBoard {
            cancel: Arc::new(AtomicBool::new(false)),
            state: Mutex::new(None),
        }
    }

    /// Claims the win for `shard` and raises the cancel token. Returns
    /// `true` if this shard was first.
    fn claim(&self, shard: usize) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.is_none() {
            *state = Some((shard, Instant::now()));
            self.cancel.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn winner(&self) -> Option<usize> {
        self.state.lock().unwrap().map(|(shard, _)| shard)
    }

    fn raised_at(&self) -> Option<Instant> {
        self.state.lock().unwrap().map(|(_, at)| at)
    }
}

/// Builds the solver stack of portfolio shard `index`. Shard 0 is the
/// exact sequential default stack, so a 1-job portfolio degenerates to
/// plain [`Orchestrator::solve`]; higher shards rotate the Boolean
/// backend, the nonlinear backend, and the decision-phase seed.
fn build_portfolio_shard(index: usize, base: &OrchestratorOptions) -> Orchestrator {
    let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64);
    let orc = match index % 4 {
        0 => Orchestrator::custom(Box::new(CdclBoolean::new()))
            .with_nonlinear(Box::new(CascadeNonlinear::default())),
        1 => Orchestrator::custom(Box::new(CdclBoolean::with_phase_seed(seed)))
            .with_nonlinear(Box::new(IntervalNonlinear::default()))
            .with_nonlinear(Box::new(PenaltyNonlinear::default())),
        2 => Orchestrator::custom(Box::new(RestartingBoolean::new()))
            .with_nonlinear(Box::new(CascadeNonlinear::default())),
        _ => Orchestrator::custom(Box::new(CdclBoolean::with_phase_seed(seed)))
            .with_nonlinear(Box::new(CascadeNonlinear::default())),
    };
    orc.with_linear(Box::new(SimplexLinear::new()))
        .with_options(base.clone())
}

/// Builds a cube shard: the default stack with phase scrambling past
/// shard 0 so shards diverge even on identical cubes.
fn build_cube_shard(index: usize, base: &OrchestratorOptions) -> Orchestrator {
    let boolean: Box<dyn crate::backends::BooleanSolver> = if index == 0 {
        Box::new(CdclBoolean::new())
    } else {
        Box::new(CdclBoolean::with_phase_seed(
            0xD1B5_4A32_D192_ED03u64.wrapping_mul(index as u64),
        ))
    };
    Orchestrator::custom(boolean)
        .with_linear(Box::new(SimplexLinear::new()))
        .with_nonlinear(Box::new(CascadeNonlinear::default()))
        .with_options(base.clone())
}

/// Picks up to `k` cube variables: the highest-activity atom variables
/// after a conflict-budgeted CDCL probe of the CNF skeleton. Theory
/// atoms are preferred (splitting on them prunes arithmetic work);
/// problems without definitions fall back to all CNF variables. Ties
/// break on index, so the pick is deterministic.
fn pick_cube_vars(problem: &AbProblem, k: usize) -> Vec<Var> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<Var> = problem.theory_vars();
    if candidates.is_empty() {
        candidates = (0..problem.cnf().num_vars())
            .map(|i| Var::new(i as u32))
            .collect();
    }
    let mut probe = Solver::from_cnf(problem.cnf());
    probe.set_conflict_budget(512);
    let _ = probe.solve();
    let activity = probe.activities();
    candidates.sort_by(|a, b| {
        let aa = activity.get(a.index()).copied().unwrap_or(0.0);
        let ab = activity.get(b.index()).copied().unwrap_or(0.0);
        ab.partial_cmp(&aa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index().cmp(&b.index()))
    });
    candidates.truncate(k);
    candidates
}

/// Expands `vars` into the `2^k` sign patterns, each a cube of
/// assumption literals. Zero variables yield the single empty cube.
fn make_cubes(vars: &[Var]) -> Vec<Vec<Lit>> {
    let k = vars.len();
    (0..1usize << k)
        .map(|mask| {
            vars.iter()
                .enumerate()
                .map(|(j, &v)| {
                    if mask >> j & 1 == 1 {
                        v.positive()
                    } else {
                        v.negative()
                    }
                })
                .collect()
        })
        .collect()
}

/// The automatic cube count: enough cubes to keep every shard busy with
/// several (≈4 cubes per job), capped so the split stays tractable.
fn auto_cube_vars(jobs: usize, available: usize) -> usize {
    let mut k = 0;
    while (1usize << k) < 4 * jobs.max(1) && k < 8 {
        k += 1;
    }
    k.min(8).min(available)
}

/// Reduces shard verdicts for the *portfolio* strategy, in shard order:
/// every shard solved the same problem, so any Sat or Unsat is the
/// answer; an iteration-limit error outranks Unknown (the caller should
/// see that a budget, not solver incompleteness, was the blocker).
fn reduce_portfolio(reports: &[ShardReport]) -> Result<Outcome, SolveError> {
    for r in reports {
        if let Ok(Outcome::Sat(m)) = &r.result {
            return Ok(Outcome::Sat(m.clone()));
        }
    }
    for r in reports {
        if let Ok(Outcome::Unsat) = &r.result {
            return Ok(Outcome::Unsat);
        }
    }
    for r in reports {
        if let Err(e) = &r.result {
            return Err(e.clone());
        }
    }
    Ok(Outcome::Unknown)
}

/// Solves with the portfolio strategy. See [`Orchestrator::solve_parallel`].
fn solve_portfolio(
    problem: &AbProblem,
    options: &ParallelOptions,
    sink: &Arc<dyn TraceSink>,
) -> (Result<Outcome, SolveError>, ParallelStats) {
    let started = Instant::now();
    let jobs = options.jobs.max(1);
    let board = WinnerBoard::new();
    let deadline = options.base.time_limit.map(|limit| started + limit);

    let mut reports: Vec<ShardReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let board = &board;
                let sink = Arc::clone(sink);
                scope.spawn(move || {
                    let shard_sink: Arc<dyn TraceSink> =
                        Arc::new(ShardSink::new(Arc::clone(&sink), shard));
                    if shard_sink.enabled() {
                        shard_sink
                            .emit(&TraceEvent::new("shard.start").field("strategy", "portfolio"));
                    }
                    let shard_started = Instant::now();
                    let mut orc = build_portfolio_shard(shard, &options.base);
                    orc.set_cancel_token(Some(board.cancel.clone()));
                    orc.set_deadline(deadline);
                    orc.set_trace_sink(Arc::clone(&shard_sink));
                    let result = orc.solve(problem);
                    if matches!(result, Ok(Outcome::Sat(_)) | Ok(Outcome::Unsat)) {
                        board.claim(shard);
                    }
                    let stats = orc.stats();
                    let latency = if stats.cancelled {
                        board.raised_at().map(|at| at.elapsed())
                    } else {
                        None
                    };
                    if shard_sink.enabled() {
                        shard_sink.emit(
                            &TraceEvent::new("shard.end")
                                .field_u64("iterations", stats.boolean_iterations)
                                .duration(shard_started.elapsed()),
                        );
                    }
                    ShardReport {
                        shard,
                        result,
                        stats: ShardStats {
                            cubes_solved: 1,
                            boolean_iterations: stats.boolean_iterations,
                            theory_checks: stats.theory_checks,
                            theory_cache_hits: stats.theory_cache_hits,
                            theory_cache_misses: stats.theory_cache_misses,
                            simplex_warm_starts: stats.simplex_warm_starts,
                            conflicts_fed_back: stats.conflicts_fed_back,
                            clauses_shared: stats.clauses_shared,
                            clauses_imported: stats.clauses_imported,
                            share_latency: stats.share_latency,
                            cancelled: stats.cancelled,
                            timed_out: stats.timed_out,
                        },
                        latency,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio shard panicked"))
            .collect()
    });
    reports.sort_by_key(|r| r.shard);

    let outcome = reduce_portfolio(&reports);
    let stats = aggregate(&reports, jobs, 0, board.winner(), started);
    (outcome, stats)
}

/// Solves with the cube-and-conquer strategy. See
/// [`Orchestrator::solve_parallel`].
fn solve_cubes(
    problem: &AbProblem,
    options: &ParallelOptions,
    sink: &Arc<dyn TraceSink>,
) -> (Result<Outcome, SolveError>, ParallelStats) {
    let started = Instant::now();
    let jobs = options.jobs.max(1);
    let available = {
        let atoms = problem.theory_vars().len();
        if atoms > 0 {
            atoms
        } else {
            problem.cnf().num_vars()
        }
    };
    let k = if options.cube_vars > 0 {
        options.cube_vars.min(available).min(16)
    } else {
        auto_cube_vars(jobs, available)
    };
    let cube_vars = pick_cube_vars(problem, k);
    let cubes = make_cubes(&cube_vars);
    let num_cubes = cubes.len();

    let board = WinnerBoard::new();
    let deadline = options.base.time_limit.map(|limit| started + limit);
    // One shared clock for the whole call: shard orchestrators get an
    // absolute deadline instead of a per-`solve_under` time limit, so
    // the budget cannot restart on every cube.
    let mut shard_base = options.base.clone();
    shard_base.time_limit = None;

    // Clause-sharing fabric: shard i receives on channel i and sends to
    // every sibling.
    let mut inboxes: Vec<Option<mpsc::Receiver<TimedLemma>>> = Vec::new();
    let mut senders: Vec<mpsc::Sender<TimedLemma>> = Vec::new();
    if options.share_clauses {
        for _ in 0..jobs {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            inboxes.push(Some(rx));
        }
    }

    // Work queue: deterministic mode assigns cube c to shard c % jobs;
    // otherwise shards pull from a shared counter.
    let next_cube = AtomicUsize::new(0);
    let cubes = &cubes;

    let mut reports: Vec<ShardReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let board = &board;
                let next_cube = &next_cube;
                let shard_base = &shard_base;
                let inbox = inboxes.get_mut(shard).and_then(Option::take);
                let outbox: Vec<mpsc::Sender<TimedLemma>> = senders
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != shard)
                    .map(|(_, tx)| tx.clone())
                    .collect();
                let deterministic = options.deterministic;
                let sink = Arc::clone(sink);
                scope.spawn(move || {
                    let shard_sink: Arc<dyn TraceSink> =
                        Arc::new(ShardSink::new(Arc::clone(&sink), shard));
                    if shard_sink.enabled() {
                        shard_sink.emit(&TraceEvent::new("shard.start").field("strategy", "cubes"));
                    }
                    let shard_started = Instant::now();
                    let mut orc = build_cube_shard(shard, shard_base);
                    orc.set_cancel_token(Some(board.cancel.clone()));
                    orc.set_deadline(deadline);
                    orc.set_trace_sink(Arc::clone(&shard_sink));
                    if let Some(inbox) = inbox {
                        orc.set_clause_sharing(outbox, inbox);
                    }
                    let mut stats = ShardStats::default();
                    let mut latency = None;
                    let mut result: Result<Outcome, SolveError> = Ok(Outcome::Unsat);
                    let mut cube_index = if deterministic { shard } else { usize::MAX };
                    loop {
                        let (cube, cube_id) = if deterministic {
                            if cube_index >= num_cubes {
                                break;
                            }
                            let id = cube_index;
                            cube_index += jobs;
                            (&cubes[id], id)
                        } else {
                            let c = next_cube.fetch_add(1, Ordering::Relaxed);
                            if c >= num_cubes {
                                break;
                            }
                            (&cubes[c], c)
                        };
                        if board.cancel.load(Ordering::Relaxed) {
                            stats.cancelled = true;
                            latency = board.raised_at().map(|at| at.elapsed());
                            break;
                        }
                        if shard_sink.enabled() {
                            shard_sink.emit(
                                &TraceEvent::new("cube.start")
                                    .cube(cube_id)
                                    .field_u64("literals", cube.len() as u64),
                            );
                        }
                        let cube_started = Instant::now();
                        let cube_result = orc.solve_under(problem, cube);
                        let run = orc.stats();
                        if shard_sink.enabled() {
                            let label = match &cube_result {
                                Ok(Outcome::Sat(_)) => "sat",
                                Ok(Outcome::Unsat) => "unsat",
                                Ok(Outcome::Unknown) => "unknown",
                                Err(_) => "iteration-limit",
                            };
                            shard_sink.emit(
                                &TraceEvent::new("cube.end")
                                    .cube(cube_id)
                                    .field("outcome", label)
                                    .duration(cube_started.elapsed()),
                            );
                        }
                        stats.cubes_solved += 1;
                        stats.boolean_iterations += run.boolean_iterations;
                        stats.theory_checks += run.theory_checks;
                        stats.theory_cache_hits += run.theory_cache_hits;
                        stats.theory_cache_misses += run.theory_cache_misses;
                        stats.simplex_warm_starts += run.simplex_warm_starts;
                        stats.conflicts_fed_back += run.conflicts_fed_back;
                        stats.clauses_shared += run.clauses_shared;
                        stats.clauses_imported += run.clauses_imported;
                        stats.share_latency += run.share_latency;
                        match cube_result {
                            Ok(Outcome::Sat(m)) => {
                                board.claim(shard);
                                result = Ok(Outcome::Sat(m));
                                break;
                            }
                            // This cube is refuted; the next one may not be.
                            Ok(Outcome::Unsat) => {}
                            Ok(Outcome::Unknown) => {
                                if run.cancelled {
                                    stats.cancelled = true;
                                    latency = board.raised_at().map(|at| at.elapsed());
                                    break;
                                }
                                if run.timed_out {
                                    stats.timed_out = true;
                                    result = Ok(Outcome::Unknown);
                                    break;
                                }
                                // A budget-limited Unknown poisons any
                                // overall Unsat claim but not a later Sat.
                                result = Ok(Outcome::Unknown);
                            }
                            Err(e) => {
                                result = Err(e);
                                break;
                            }
                        }
                    }
                    if shard_sink.enabled() {
                        shard_sink.emit(
                            &TraceEvent::new("shard.end")
                                .field_u64("cubes_solved", stats.cubes_solved as u64)
                                .duration(shard_started.elapsed()),
                        );
                    }
                    ShardReport {
                        shard,
                        result,
                        stats,
                        latency,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cube shard panicked"))
            .collect()
    });
    reports.sort_by_key(|r| r.shard);

    // Reduction: Sat anywhere wins; Unsat only if *every* cube was
    // refuted (no Unknown, no error, no unfinished work).
    let mut outcome: Result<Outcome, SolveError> = Ok(Outcome::Unsat);
    for r in &reports {
        if let Ok(Outcome::Sat(m)) = &r.result {
            outcome = Ok(Outcome::Sat(m.clone()));
            break;
        }
    }
    if !matches!(outcome, Ok(Outcome::Sat(_))) {
        for r in &reports {
            match &r.result {
                Err(e) => {
                    outcome = Err(e.clone());
                    break;
                }
                Ok(Outcome::Unknown) => outcome = Ok(Outcome::Unknown),
                _ => {}
            }
        }
        // A shard cancelled without a Sat winner left cubes undecided.
        if matches!(outcome, Ok(Outcome::Unsat))
            && reports
                .iter()
                .any(|r| r.stats.cancelled || r.stats.timed_out)
        {
            outcome = Ok(Outcome::Unknown);
        }
    }

    let stats = aggregate(&reports, jobs, num_cubes, board.winner(), started);
    (outcome, stats)
}

/// What one component shard brought home: the usual shard accounting
/// plus the SAT witnesses of the components it solved.
struct ComponentShardOutcome {
    shard: usize,
    stats: ShardStats,
    latency: Option<Duration>,
    error: Option<SolveError>,
    /// The shard refuted one of its components (whole problem Unsat).
    unsat: bool,
    /// A component came back undecided (budget or incompleteness).
    unknown: bool,
    models: Vec<(usize, AbModel)>,
}

/// Solves each connected component of a decomposable problem on its own
/// shard. Components are distributed round-robin by index in
/// deterministic mode and through a shared work queue otherwise. The
/// conjunction is Unsat as soon as *any* component is, so an Unsat
/// verdict claims the win and cancels the siblings; Sat requires every
/// component's witness, which are stitched back into one model at the
/// end.
fn solve_component_shards(
    problem: &AbProblem,
    partition: &Partition,
    options: &ParallelOptions,
    sink: &Arc<dyn TraceSink>,
) -> (Result<Outcome, SolveError>, ParallelStats) {
    let started = Instant::now();
    let num_components = partition.len();
    let jobs = options.jobs.max(1).min(num_components);
    let board = WinnerBoard::new();
    let deadline = options.base.time_limit.map(|limit| started + limit);
    // Like cubes: one absolute deadline for the whole call, so the budget
    // cannot restart on every component.
    let mut shard_base = options.base.clone();
    shard_base.time_limit = None;
    let next_component = AtomicUsize::new(0);

    let mut outcomes: Vec<ComponentShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|shard| {
                let board = &board;
                let next_component = &next_component;
                let shard_base = &shard_base;
                let deterministic = options.deterministic;
                let sink = Arc::clone(sink);
                scope.spawn(move || {
                    let shard_sink: Arc<dyn TraceSink> =
                        Arc::new(ShardSink::new(Arc::clone(&sink), shard));
                    if shard_sink.enabled() {
                        shard_sink
                            .emit(&TraceEvent::new("shard.start").field("strategy", "components"));
                    }
                    let shard_started = Instant::now();
                    let mut orc = build_cube_shard(shard, shard_base);
                    orc.set_cancel_token(Some(board.cancel.clone()));
                    orc.set_deadline(deadline);
                    orc.set_trace_sink(Arc::clone(&shard_sink));
                    let mut stats = ShardStats::default();
                    let mut latency = None;
                    let mut error = None;
                    let mut unsat = false;
                    let mut unknown = false;
                    let mut models: Vec<(usize, AbModel)> = Vec::new();
                    let mut comp_index = if deterministic { shard } else { usize::MAX };
                    loop {
                        let idx = if deterministic {
                            if comp_index >= num_components {
                                break;
                            }
                            let id = comp_index;
                            comp_index += jobs;
                            id
                        } else {
                            let c = next_component.fetch_add(1, Ordering::Relaxed);
                            if c >= num_components {
                                break;
                            }
                            c
                        };
                        if board.cancel.load(Ordering::Relaxed) {
                            stats.cancelled = true;
                            latency = board.raised_at().map(|at| at.elapsed());
                            break;
                        }
                        let sub = partition.extract(problem, idx);
                        if shard_sink.enabled() {
                            shard_sink.emit(
                                &TraceEvent::new("component.start")
                                    .field_u64("component", idx as u64)
                                    .field_u64("size", partition.components()[idx].size() as u64),
                            );
                        }
                        let comp_started = Instant::now();
                        let comp_result = orc.solve_under(&sub, &[]);
                        let run = orc.stats();
                        if shard_sink.enabled() {
                            let label = match &comp_result {
                                Ok(Outcome::Sat(_)) => "sat",
                                Ok(Outcome::Unsat) => "unsat",
                                Ok(Outcome::Unknown) => "unknown",
                                Err(_) => "iteration-limit",
                            };
                            shard_sink.emit(
                                &TraceEvent::new("component.end")
                                    .field_u64("component", idx as u64)
                                    .field("outcome", label)
                                    .duration(comp_started.elapsed()),
                            );
                        }
                        stats.cubes_solved += 1;
                        stats.boolean_iterations += run.boolean_iterations;
                        stats.theory_checks += run.theory_checks;
                        stats.theory_cache_hits += run.theory_cache_hits;
                        stats.theory_cache_misses += run.theory_cache_misses;
                        stats.simplex_warm_starts += run.simplex_warm_starts;
                        stats.conflicts_fed_back += run.conflicts_fed_back;
                        stats.clauses_shared += run.clauses_shared;
                        stats.clauses_imported += run.clauses_imported;
                        stats.share_latency += run.share_latency;
                        match comp_result {
                            Ok(Outcome::Sat(m)) => models.push((idx, *m)),
                            Ok(Outcome::Unsat) => {
                                board.claim(shard);
                                unsat = true;
                                break;
                            }
                            Ok(Outcome::Unknown) => {
                                if run.cancelled {
                                    stats.cancelled = true;
                                    latency = board.raised_at().map(|at| at.elapsed());
                                    break;
                                }
                                if run.timed_out {
                                    stats.timed_out = true;
                                    unknown = true;
                                    break;
                                }
                                unknown = true;
                            }
                            Err(e) => {
                                error = Some(e);
                                break;
                            }
                        }
                    }
                    if shard_sink.enabled() {
                        shard_sink.emit(
                            &TraceEvent::new("shard.end")
                                .field_u64("components_solved", stats.cubes_solved as u64)
                                .duration(shard_started.elapsed()),
                        );
                    }
                    ComponentShardOutcome {
                        shard,
                        stats,
                        latency,
                        error,
                        unsat,
                        unknown,
                        models,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("component shard panicked"))
            .collect()
    });
    outcomes.sort_by_key(|o| o.shard);

    let stats = ParallelStats {
        jobs,
        cubes: 0,
        components: num_components,
        shards: outcomes.iter().map(|o| o.stats).collect(),
        winner: board.winner(),
        clauses_shared: outcomes.iter().map(|o| o.stats.clauses_shared).sum(),
        clauses_imported: outcomes.iter().map(|o| o.stats.clauses_imported).sum(),
        share_latency: outcomes.iter().map(|o| o.stats.share_latency).sum(),
        cancel_latency: outcomes.iter().filter_map(|o| o.latency).max(),
        timed_out: outcomes.iter().any(|o| o.stats.timed_out),
        elapsed: started.elapsed(),
    };

    // Reduction: one refuted component refutes the conjunction; then
    // errors; then anything undecided; Sat only with a witness for every
    // component.
    let any_unknown = outcomes.iter().any(|o| o.unknown);
    let outcome: Result<Outcome, SolveError> = if outcomes.iter().any(|o| o.unsat) {
        Ok(Outcome::Unsat)
    } else if let Some(e) = outcomes.iter().find_map(|o| o.error.clone()) {
        Err(e)
    } else {
        let mut slots: Vec<Option<AbModel>> = (0..num_components).map(|_| None).collect();
        for o in outcomes {
            for (idx, model) in o.models {
                slots[idx] = Some(model);
            }
        }
        if any_unknown
            || stats.timed_out
            || stats.shards.iter().any(|s| s.cancelled)
            || slots.iter().any(Option::is_none)
        {
            Ok(Outcome::Unknown)
        } else {
            let models: Vec<AbModel> = slots.into_iter().map(Option::unwrap).collect();
            Ok(Outcome::Sat(Box::new(partition.stitch(&models))))
        }
    };
    (outcome, stats)
}

/// Folds shard reports into [`ParallelStats`], in shard order.
fn aggregate(
    reports: &[ShardReport],
    jobs: usize,
    cubes: usize,
    winner: Option<usize>,
    started: Instant,
) -> ParallelStats {
    ParallelStats {
        jobs,
        cubes,
        components: 0,
        shards: reports.iter().map(|r| r.stats).collect(),
        winner,
        clauses_shared: reports.iter().map(|r| r.stats.clauses_shared).sum(),
        clauses_imported: reports.iter().map(|r| r.stats.clauses_imported).sum(),
        share_latency: reports.iter().map(|r| r.stats.share_latency).sum(),
        cancel_latency: reports.iter().filter_map(|r| r.latency).max(),
        timed_out: reports.iter().any(|r| r.stats.timed_out),
        elapsed: started.elapsed(),
    }
}

impl Orchestrator {
    /// Solves an AB-problem with `jobs` worker threads under the chosen
    /// [`ParallelStrategy`]. The receiver's own backends are not used —
    /// shards build their stacks from [`ParallelOptions::base`] inside
    /// their threads (backends are not `Send`) — but the aggregated
    /// verdict is exactly comparable to a sequential
    /// [`Orchestrator::solve`] on the same problem.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::IterationLimit`] if a shard exceeds the
    /// iteration cap and no shard found a definitive verdict.
    pub fn solve_parallel(
        &mut self,
        problem: &AbProblem,
        options: &ParallelOptions,
    ) -> Result<(Outcome, ParallelStats), SolveError> {
        let sink = self.trace_sink();
        // A decomposable problem splits into independent subproblems
        // before any strategy-level split: each component gets its own
        // shard. Gated on jobs >= 2 so a 1-job run stays byte-for-byte
        // the sequential control loop.
        if options.jobs >= 2 {
            let partition = Partition::of(problem);
            if partition.len() >= 2 {
                if sink.enabled() {
                    let sizes = partition
                        .sizes()
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    sink.emit(
                        &TraceEvent::new("analyze.partition")
                            .field_u64("components", partition.len() as u64)
                            .field("sizes", sizes),
                    );
                }
                let (outcome, stats) = solve_component_shards(problem, &partition, options, &sink);
                return outcome.map(|o| (o, stats));
            }
        }
        let (outcome, stats) = match options.strategy {
            ParallelStrategy::Portfolio => solve_portfolio(problem, options, &sink),
            ParallelStrategy::Cubes => solve_cubes(problem, options, &sink),
        };
        outcome.map(|o| (o, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_cover_all_sign_patterns() {
        let vars = vec![Var::new(0), Var::new(3)];
        let cubes = make_cubes(&vars);
        assert_eq!(cubes.len(), 4);
        let mut signs: Vec<(bool, bool)> = cubes
            .iter()
            .map(|c| (c[0].is_positive(), c[1].is_positive()))
            .collect();
        signs.sort_unstable();
        signs.dedup();
        assert_eq!(signs.len(), 4, "all four sign patterns are distinct");
    }

    #[test]
    fn empty_var_list_yields_single_empty_cube() {
        assert_eq!(make_cubes(&[]), vec![Vec::<Lit>::new()]);
    }

    #[test]
    fn auto_cube_vars_scales_with_jobs() {
        assert_eq!(auto_cube_vars(1, 100), 2); // 4 cubes
        assert_eq!(auto_cube_vars(4, 100), 4); // 16 cubes
        assert_eq!(auto_cube_vars(100, 100), 8); // capped
        assert_eq!(auto_cube_vars(4, 3), 3); // capped by available vars
        assert_eq!(auto_cube_vars(4, 0), 0); // nothing to cube on
    }

    #[test]
    fn pick_cube_vars_prefers_theory_atoms() {
        let text = "p cnf 4 3\n1 4 0\n-1 2 0\n3 4 0\nc def real 1 x >= 0\nc def real 2 x <= 5\n";
        let problem: AbProblem = text.parse().unwrap();
        let picked = pick_cube_vars(&problem, 2);
        assert_eq!(picked.len(), 2);
        for v in &picked {
            assert!(
                problem.theory_vars().contains(v),
                "{v:?} should be a theory atom"
            );
        }
    }

    #[test]
    fn pick_cube_vars_on_pure_boolean_problem() {
        let problem: AbProblem = "p cnf 2 1\n1 2 0\n".parse().unwrap();
        let picked = pick_cube_vars(&problem, 8);
        assert_eq!(
            picked.len(),
            2,
            "falls back to CNF variables, capped at num_vars"
        );
    }

    #[test]
    fn strategy_parses_and_displays() {
        assert_eq!(
            "portfolio".parse::<ParallelStrategy>().unwrap(),
            ParallelStrategy::Portfolio
        );
        assert_eq!(
            "cubes".parse::<ParallelStrategy>().unwrap(),
            ParallelStrategy::Cubes
        );
        assert!("x".parse::<ParallelStrategy>().is_err());
        assert_eq!(ParallelStrategy::Cubes.to_string(), "cubes");
    }
}
