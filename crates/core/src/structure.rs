//! Connected-component partitioning of AB-problems.
//!
//! The variable–constraint incidence graph of an AB-problem has one node
//! per Boolean variable and one per arithmetic variable; a clause joins
//! the variables of its literals, and a definition joins its Boolean
//! variable with every arithmetic variable of its constraints. Two
//! clauses (or definitions) in different connected components share no
//! variable at all, so the problem is satisfiable **iff every component
//! is satisfiable on its own**, and a model of the whole is the union of
//! per-component models — the conjunction simply factors.
//!
//! [`Partition::of`] computes the components with a union–find over the
//! node set, [`Partition::extract`] materialises one component as a
//! standalone *dense* [`AbProblem`] — only the component's variables are
//! declared, renumbered compactly, so the subproblem is exactly
//! isomorphic to the component written down on its own (a subproblem
//! carrying the whole problem's variable table measurably derails the
//! CDCL decision heuristic on the dead variables) — and
//! [`Partition::stitch`] translates per-component models back through
//! the component's variable lists into one model of the whole problem.
//! Variables in no component are unconstrained; stitching gives them
//! arbitrary total values (`false` / `0`).

use crate::problem::{AbModel, AbProblem, ArithModel};
use absolver_logic::{Assignment, Tri, Var};
use absolver_nonlinear::{Expr, NlConstraint};
use absolver_num::Rational;
use std::collections::HashMap;

/// One connected component of a problem's incidence graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Component {
    /// Boolean variable indices belonging to this component.
    pub bools: Vec<u32>,
    /// Arithmetic variable ids belonging to this component.
    pub arith: Vec<usize>,
    /// Indices (into `problem.cnf().clauses()`) of the clauses here.
    pub clauses: Vec<usize>,
    /// Boolean variables whose definitions belong to this component.
    pub defs: Vec<u32>,
}

impl Component {
    /// Number of clauses plus definitions — the component's "size" as
    /// reported in structure summaries.
    pub fn size(&self) -> usize {
        self.clauses.len() + self.defs.len()
    }
}

/// The connected components of a problem, in deterministic order (by the
/// smallest node they contain, Boolean variables first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    components: Vec<Component>,
    num_bool: usize,
    num_arith: usize,
}

/// Array-based union–find with path halving and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

impl Partition {
    /// Computes the connected components of `problem`'s incidence graph.
    ///
    /// Boolean variables that occur in no clause and carry no definition
    /// (and arithmetic variables no constraint mentions) belong to no
    /// component: they are unconstrained and any value works for them.
    /// Empty clauses have no variables to anchor them; they are attached
    /// to the first component (creating one if needed) so that their
    /// unsatisfiability is still observed by whoever solves it.
    pub fn of(problem: &AbProblem) -> Partition {
        let num_bool = problem.cnf().num_vars();
        let num_arith = problem.arith_vars().len();
        let node_of_bool = |v: usize| v;
        let node_of_arith = |v: usize| num_bool + v;
        let mut uf = UnionFind::new(num_bool + num_arith);
        let mut empty_clauses: Vec<usize> = Vec::new();

        for (i, clause) in problem.cnf().clauses().iter().enumerate() {
            let lits = clause.lits();
            match lits.first() {
                None => empty_clauses.push(i),
                Some(first) => {
                    for l in &lits[1..] {
                        uf.union(
                            node_of_bool(first.var().index()),
                            node_of_bool(l.var().index()),
                        );
                    }
                }
            }
        }
        for (var, def) in problem.defs() {
            for c in &def.constraints {
                for &v in c.variables() {
                    uf.union(node_of_bool(var.index()), node_of_arith(v));
                }
            }
        }

        // A node is *live* when some clause or definition mentions it.
        let mut live = vec![false; num_bool + num_arith];
        for clause in problem.cnf().clauses() {
            for l in clause.iter() {
                live[node_of_bool(l.var().index())] = true;
            }
        }
        for (var, def) in problem.defs() {
            live[node_of_bool(var.index())] = true;
            for c in &def.constraints {
                for &v in c.variables() {
                    live[node_of_arith(v)] = true;
                }
            }
        }

        // Number components by first-encountered root, scanning nodes in
        // order — a deterministic, input-defined component order.
        let mut comp_of_root: Vec<Option<usize>> = vec![None; num_bool + num_arith];
        let mut components: Vec<Component> = Vec::new();
        for (node, &is_live) in live.iter().enumerate() {
            if !is_live {
                continue;
            }
            let root = uf.find(node);
            let idx = *comp_of_root[root].get_or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            if node < num_bool {
                components[idx].bools.push(node as u32);
            } else {
                components[idx].arith.push(node - num_bool);
            }
        }
        for (i, clause) in problem.cnf().clauses().iter().enumerate() {
            if let Some(l) = clause.lits().first() {
                let root = uf.find(node_of_bool(l.var().index()));
                let idx = comp_of_root[root].expect("live clause var has a component");
                components[idx].clauses.push(i);
            }
        }
        for (var, _) in problem.defs() {
            let root = uf.find(node_of_bool(var.index()));
            let idx = comp_of_root[root].expect("defined var has a component");
            components[idx].defs.push(var.index() as u32);
        }
        if !empty_clauses.is_empty() {
            if components.is_empty() {
                components.push(Component::default());
            }
            components[0].clauses.extend(empty_clauses);
            components[0].clauses.sort_unstable();
        }
        Partition {
            components,
            num_bool,
            num_arith,
        }
    }

    /// The components, in deterministic order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when there is nothing to solve at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// `true` when partitioning cannot split the work (fewer than two
    /// components).
    pub fn is_trivial(&self) -> bool {
        self.components.len() < 2
    }

    /// Sizes (clauses + definitions) of each component.
    pub fn sizes(&self) -> Vec<usize> {
        self.components.iter().map(Component::size).collect()
    }

    /// Materialises component `idx` as a standalone *dense* problem:
    /// only the component's Boolean and arithmetic variables are
    /// declared, renumbered compactly in ascending original order (the
    /// order of [`Component::bools`] / [`Component::arith`]), with their
    /// kinds and ranges preserved and every constraint's variable ids
    /// rewritten accordingly. The subproblem is satisfiable iff the
    /// component's conjunction of clauses and definitions is, and is
    /// exactly the problem one would have written for the component
    /// alone — no dead variables for the solver's heuristics to trip on.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn extract(&self, problem: &AbProblem, idx: usize) -> AbProblem {
        let comp = &self.components[idx];
        let mut b = AbProblem::builder();
        let mut arith_new: HashMap<usize, usize> = HashMap::new();
        for &av in &comp.arith {
            let v = &problem.arith_vars()[av];
            let id = b.arith_var(&v.name, v.kind);
            b.set_range(id, v.range);
            arith_new.insert(av, id);
        }
        let mut bool_new: HashMap<u32, Var> = HashMap::new();
        for &bv in &comp.bools {
            bool_new.insert(bv, b.bool_var());
        }
        for &dv in &comp.defs {
            let def = problem.def(Var::new(dv)).expect("component def exists");
            let nv = bool_new[&dv];
            for c in &def.constraints {
                b.define(nv, remap_constraint(c, &arith_new));
            }
        }
        let clauses = problem.cnf().clauses();
        for &ci in &comp.clauses {
            b.add_clause(clauses[ci].lits().iter().map(|l| {
                let nv = bool_new[&(l.var().index() as u32)];
                if l.is_positive() {
                    nv.positive()
                } else {
                    nv.negative()
                }
            }));
        }
        b.build()
    }

    /// Merges per-component models (aligned with [`Partition::components`],
    /// each over its component's *dense* variable space as produced by
    /// [`Partition::extract`]) into one model of the whole problem: each
    /// component's values are written back through its variable lists to
    /// the original numbering. Variables in no component are
    /// unconstrained, so they receive arbitrary total values (`false`,
    /// `0`). Exactness is preserved when every part is exact; otherwise
    /// the stitched arithmetic model is numeric.
    ///
    /// # Panics
    ///
    /// Panics if `models` does not have one entry per component.
    pub fn stitch(&self, models: &[AbModel]) -> AbModel {
        assert_eq!(
            models.len(),
            self.components.len(),
            "one model per component"
        );
        let all_exact = models
            .iter()
            .all(|m| matches!(m.arith, ArithModel::Exact(_)));
        let mut boolean = Assignment::new(self.num_bool);
        for v in 0..self.num_bool {
            boolean.set(Var::new(v as u32), Tri::False);
        }
        let mut exact: Vec<Rational> = if all_exact {
            vec![Rational::zero(); self.num_arith]
        } else {
            Vec::new()
        };
        let mut numeric: Vec<f64> = if all_exact {
            Vec::new()
        } else {
            vec![0.0; self.num_arith]
        };
        for (comp, model) in self.components.iter().zip(models) {
            for (dense, &bv) in comp.bools.iter().enumerate() {
                boolean.set(Var::new(bv), model.boolean.value(Var::new(dense as u32)));
            }
            for (dense, &av) in comp.arith.iter().enumerate() {
                if all_exact {
                    if let Some(value) = model.arith.value_exact(dense) {
                        exact[av] = value.clone();
                    }
                } else if let Some(value) = model.arith.value_f64(dense) {
                    numeric[av] = value;
                }
            }
        }
        AbModel {
            boolean,
            arith: if all_exact {
                ArithModel::Exact(exact)
            } else {
                ArithModel::Numeric(numeric)
            },
        }
    }
}

/// Rewrites a constraint's arithmetic variable ids through `map`,
/// re-interning the rewritten term. Extraction-time only — solving the
/// component reuses the interned result throughout.
fn remap_constraint(c: &NlConstraint, map: &HashMap<usize, usize>) -> NlConstraint {
    let expr = remap_expr(&absolver_nonlinear::term::rebuild(c.term()), map);
    NlConstraint::new(expr, c.op, c.rhs.clone())
}

fn remap_expr(e: &Expr, map: &HashMap<usize, usize>) -> Expr {
    let go = |e: &Expr| Box::new(remap_expr(e, map));
    match e {
        Expr::Const(k) => Expr::Const(k.clone()),
        Expr::Var(v) => Expr::Var(*map.get(v).expect("component constraint var is mapped")),
        Expr::Neg(a) => Expr::Neg(go(a)),
        Expr::Add(a, b) => Expr::Add(go(a), go(b)),
        Expr::Sub(a, b) => Expr::Sub(go(a), go(b)),
        Expr::Mul(a, b) => Expr::Mul(go(a), go(b)),
        Expr::Div(a, b) => Expr::Div(go(a), go(b)),
        Expr::Pow(a, k) => Expr::Pow(go(a), *k),
        Expr::Sin(a) => Expr::Sin(go(a)),
        Expr::Cos(a) => Expr::Cos(go(a)),
        Expr::Exp(a) => Expr::Exp(go(a)),
        Expr::Ln(a) => Expr::Ln(go(a)),
        Expr::Sqrt(a) => Expr::Sqrt(go(a)),
        Expr::Abs(a) => Expr::Abs(go(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::VarKind;
    use absolver_linear::CmpOp;
    use absolver_nonlinear::Expr;

    /// Two independent blocks: (v1, x) and (v2, v3, y).
    fn two_block_problem() -> AbProblem {
        let mut b = AbProblem::builder();
        let x = b.arith_var("x", VarKind::Real);
        let y = b.arith_var("y", VarKind::Real);
        let a1 = b.atom(Expr::var(x), CmpOp::Ge, Rational::zero());
        b.add_clause([a1.positive()]);
        let a2 = b.atom(Expr::var(y), CmpOp::Le, Rational::from_int(5));
        let free = b.bool_var();
        b.add_clause([a2.positive(), free.positive()]);
        b.build()
    }

    #[test]
    fn disconnected_blocks_are_separated() {
        let p = two_block_problem();
        let part = Partition::of(&p);
        assert_eq!(part.len(), 2);
        assert!(!part.is_trivial());
        let total_clauses: usize = part.components().iter().map(|c| c.clauses.len()).sum();
        assert_eq!(total_clauses, p.cnf().len());
        let total_defs: usize = part.components().iter().map(|c| c.defs.len()).sum();
        assert_eq!(total_defs, p.num_defs());
        // Components never share a variable.
        for (i, a) in part.components().iter().enumerate() {
            for b in &part.components()[i + 1..] {
                assert!(a.bools.iter().all(|v| !b.bools.contains(v)));
                assert!(a.arith.iter().all(|v| !b.arith.contains(v)));
            }
        }
    }

    #[test]
    fn chained_clauses_stay_connected() {
        let p: AbProblem = "p cnf 3 2\n1 2 0\n-2 3 0\n".parse().unwrap();
        assert_eq!(Partition::of(&p).len(), 1);
    }

    #[test]
    fn extraction_is_dense() {
        let p = two_block_problem();
        let part = Partition::of(&p);
        for (i, comp) in part.components().iter().enumerate() {
            let sub = part.extract(&p, i);
            assert_eq!(sub.cnf().num_vars(), comp.bools.len());
            assert_eq!(sub.arith_vars().len(), comp.arith.len());
            assert_eq!(sub.cnf().len(), comp.clauses.len());
            assert_eq!(sub.num_defs(), comp.defs.len());
            // Kinds, names, and ranges survive the renumbering.
            for (dense, &av) in comp.arith.iter().enumerate() {
                assert_eq!(sub.arith_vars()[dense].name, p.arith_vars()[av].name);
                assert_eq!(sub.arith_vars()[dense].kind, p.arith_vars()[av].kind);
                assert_eq!(sub.arith_vars()[dense].range, p.arith_vars()[av].range);
            }
        }
    }

    #[test]
    fn empty_clause_lands_in_a_component() {
        let mut p = two_block_problem();
        p = p.with_clause(Vec::<absolver_logic::Lit>::new());
        let part = Partition::of(&p);
        let placed: usize = part.components().iter().map(|c| c.clauses.len()).sum();
        assert_eq!(placed, p.cnf().len(), "the empty clause must be placed");
    }

    #[test]
    fn stitching_merges_per_component_values() {
        let p = two_block_problem();
        let part = Partition::of(&p);
        // Hand-build per-component models over each component's *dense*
        // variable space (what solving an extract produces).
        let model = |arith: Vec<f64>, bools: &[Tri]| AbModel {
            boolean: {
                let mut a = absolver_logic::Assignment::new(bools.len());
                for (i, &t) in bools.iter().enumerate() {
                    a.set(Var::new(i as u32), t);
                }
                a
            },
            arith: ArithModel::Numeric(arith),
        };
        // Component 0 owns (v1, x); component 1 owns (v2, v3, y).
        let m0 = model(vec![1.0], &[Tri::True]);
        let m1 = model(vec![2.0], &[Tri::True, Tri::False]);
        let whole = part.stitch(&[m0, m1]);
        assert_eq!(whole.arith.value_f64(0), Some(1.0), "x from component 0");
        assert_eq!(whole.arith.value_f64(1), Some(2.0), "y from component 1");
        assert_eq!(whole.boolean.value(Var::new(0)), Tri::True);
        assert_eq!(whole.boolean.value(Var::new(1)), Tri::True);
        assert_eq!(whole.boolean.value(Var::new(2)), Tri::False);
        assert!(whole.satisfies(&p, 1e-9));
    }
}
