//! ABsolver's core: AB-problems, the extended DIMACS format, the 3-valued
//! circuit, the solver interface layer, and the orchestrating control loop.
//!
//! This crate reproduces the primary contribution of *"Tool-support for
//! the analysis of hybrid systems and models"* (Bauer, Pister, Tautschnig,
//! DATE 2007): an extensible multi-domain constraint solver in which a
//! Boolean SAT solver, a linear solver, and a nonlinear solver cooperate
//! through a uniform interface to decide *AB-problems* — Boolean
//! combinations of (possibly nonlinear) arithmetic constraints.
//!
//! # Architecture (paper Fig. 4)
//!
//! * **Input layer** — [`parser`] reads the extended DIMACS format;
//!   [`AbProblem::builder`] is the programmatic equivalent of the C++ API.
//! * **Core** — [`Circuit`], gates over `{tt, ff, ?}` ([`absolver_logic::Tri`]),
//!   with Tseitin lowering to CNF; [`AbProblem`] holds the CNF skeleton
//!   plus the arithmetic definitions.
//! * **Solver interface layer** — [`BooleanSolver`], [`LinearBackend`],
//!   [`NonlinearBackend`] trait objects with built-in implementations
//!   standing in for zChaff/LSAT, COIN and IPOPT.
//! * **Control loop** — [`Orchestrator`]: lazy SMT with minimal-conflict
//!   feedback and all-models enumeration.
//!
//! # Quickstart (the paper's Fig. 1/2 example)
//!
//! ```
//! use absolver_core::{AbProblem, Orchestrator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "\
//! p cnf 4 3
//! 1 0
//! -2 3 0
//! 4 0
//! c def int 1 i >= 0
//! c def int 1 j >= 0
//! c def int 2 2*i + j < 10
//! c def int 3 i + j < 5
//! c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
//! c range a -10 10
//! c range x -10 10
//! c range y -10 10
//! ";
//! let problem: AbProblem = text.parse()?;
//! let outcome = Orchestrator::with_defaults().solve(&problem)?;
//! let model = outcome.model().expect("the example is satisfiable");
//! assert!(model.satisfies(&problem, 1e-6));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
mod circuit;
mod orchestrator;
pub mod parallel;
pub mod parser;
pub mod preprocess;
mod problem;
pub mod script;
mod session;
pub mod structure;
pub mod theory;

pub use backends::{
    BooleanSolver, CascadeNonlinear, CdclBoolean, IntervalNonlinear, LinearBackend,
    NonlinearBackend, PenaltyNonlinear, RestartingBoolean, SimplexLinear,
};
pub use circuit::{Circuit, Gate, NoOutputError, NodeId, TseitinCnf};
pub use orchestrator::{
    problem_fingerprint, Orchestrator, OrchestratorOptions, OrchestratorStats, Outcome, SolveError,
};
pub use parallel::{ParallelOptions, ParallelStats, ParallelStrategy, ShardStats};
pub use parser::{
    parse_session_constraint, parse_spanned, DefSite, ParseAbError, RangeSite, SourceMap, Span,
};
pub use preprocess::{PreprocessSummary, Preprocessed, ProblemPreprocessor, Reconstruction};
pub use problem::{AbModel, AbProblem, AbProblemBuilder, ArithModel, ArithVar, AtomDef, VarKind};
pub use session::{Session, SessionError};
pub use structure::{Component, Partition};
