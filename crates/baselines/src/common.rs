//! Shared result types of the baseline solvers.

use absolver_core::AbModel;
use std::fmt;
use std::time::Duration;

/// Verdict of a baseline solver run.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineVerdict {
    /// Satisfiable with a model.
    Sat(Box<AbModel>),
    /// Unsatisfiable.
    Unsat,
    /// Undecided within resource limits.
    Unknown,
    /// The solver rejected the input — e.g. MathSAT and CVC Lite "rejected
    /// the problems due to the nonlinear arithmetic inequalities contained"
    /// (paper Sec. 5.1).
    Rejected(String),
    /// The solver aborted on its memory budget — CVC Lite's behaviour on
    /// the Sudoku benchmarks (paper Table 3, the `–*` entries).
    OutOfMemory,
    /// The wall-clock limit expired.
    Timeout,
}

impl BaselineVerdict {
    /// Returns `true` for [`BaselineVerdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, BaselineVerdict::Sat(_))
    }

    /// Returns `true` for [`BaselineVerdict::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, BaselineVerdict::Unsat)
    }
}

impl fmt::Display for BaselineVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineVerdict::Sat(_) => f.write_str("sat"),
            BaselineVerdict::Unsat => f.write_str("unsat"),
            BaselineVerdict::Unknown => f.write_str("unknown"),
            BaselineVerdict::Rejected(why) => write!(f, "rejected ({why})"),
            BaselineVerdict::OutOfMemory => f.write_str("out of memory"),
            BaselineVerdict::Timeout => f.write_str("timeout"),
        }
    }
}

/// Outcome plus run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// The verdict.
    pub verdict: BaselineVerdict,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Theory conflicts fed back into the Boolean search (DPLL(T) path).
    pub theory_conflicts: u64,
    /// Estimated bytes materialised by an eager preprocessing phase.
    pub eager_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display_and_predicates() {
        assert_eq!(BaselineVerdict::Unsat.to_string(), "unsat");
        assert!(BaselineVerdict::Unsat.is_unsat());
        assert!(!BaselineVerdict::Unknown.is_sat());
        assert_eq!(BaselineVerdict::OutOfMemory.to_string(), "out of memory");
        assert_eq!(
            BaselineVerdict::Rejected("nonlinear".into()).to_string(),
            "rejected (nonlinear)"
        );
        assert_eq!(BaselineVerdict::Timeout.to_string(), "timeout");
    }
}
