//! Baseline solvers for the ABsolver comparative benchmarks (paper Sec. 5).
//!
//! The paper compares ABsolver against two established Boolean-linear
//! SMT solvers; this crate provides behaviour-faithful from-scratch
//! stand-ins:
//!
//! * [`MathSatLike`] — a *tightly integrated* DPLL(T) solver (incremental
//!   simplex inside the CDCL search). Fast on simple Boolean-linear
//!   problems (Table 2), rejects nonlinear input (Table 1).
//! * [`CvcLike`] — an *eager* validity-checker profile: Fourier–Motzkin
//!   lemma saturation under a hard memory budget before searching. Also
//!   rejects nonlinear input; aborts out-of-memory on dense integer
//!   disequality systems such as Sudoku encodings (Table 3).
//!
//! ```
//! use absolver_baselines::{BaselineVerdict, MathSatLike};
//! use absolver_core::AbProblem;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p: AbProblem = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n".parse()?;
//! let run = MathSatLike::new().solve(&p);
//! assert_eq!(run.verdict, BaselineVerdict::Unsat);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod cvc_like;
mod mathsat_like;

pub use common::{BaselineRun, BaselineVerdict};
pub use cvc_like::{CvcLike, CvcLikeOptions};
pub use mathsat_like::{MathSatLike, MathSatLikeOptions};
