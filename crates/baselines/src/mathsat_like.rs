//! The tightly-integrated Boolean-linear baseline (the MathSAT 3 role).
//!
//! MathSAT "integrates both a Boolean as well as a linear solver and
//! benefits from a tight integration of its constituents" (paper
//! Sec. 1.2), which is why it beats ABsolver's loose coupling on the
//! simple SMT-LIB problems (Table 2) — and why it "rejected the problems
//! due to the nonlinear arithmetic" in Table 1.
//!
//! [`MathSatLike`] reproduces that architecture: a DPLL(T) loop in which
//! an *incremental* simplex (`push`/`pop` against the CDCL trail) checks
//! every unit-propagation fixpoint, feeding conflict clauses straight back
//! into the running search — no solver restarts, no re-asserting of
//! constraints, in contrast to ABsolver's two separate entities.

use crate::common::{BaselineRun, BaselineVerdict};
use absolver_core::theory::{check, TheoryBudget, TheoryContext, TheoryItem, TheoryVerdict};
use absolver_core::{AbModel, AbProblem, LinearBackend, NonlinearBackend, SimplexLinear, VarKind};
use absolver_linear::{CheckResult, LinearConstraint, Simplex};
use absolver_logic::{Assignment, Lit, Tri};
use absolver_num::Interval;
use absolver_sat::{SolveResult, Solver, TheoryHook, TheoryResponse};
use std::time::{Duration, Instant};

/// Configuration of the tight baseline.
#[derive(Debug, Clone)]
pub struct MathSatLikeOptions {
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Whether to run the incremental theory check at every propagation
    /// fixpoint (early pruning) or only on total models.
    pub eager_fixpoint_checks: bool,
}

impl Default for MathSatLikeOptions {
    fn default() -> Self {
        MathSatLikeOptions {
            time_limit: None,
            eager_fixpoint_checks: true,
        }
    }
}

/// A tightly-integrated DPLL(T) solver for Boolean + linear AB-problems.
#[derive(Debug, Default)]
pub struct MathSatLike {
    /// Options.
    pub options: MathSatLikeOptions,
}

impl MathSatLike {
    /// Creates the baseline with default options.
    pub fn new() -> MathSatLike {
        MathSatLike::default()
    }

    /// Solves an AB-problem (Boolean + linear only).
    pub fn solve(&mut self, problem: &AbProblem) -> BaselineRun {
        let started = Instant::now();
        if problem.num_nonlinear() > 0 {
            // Faithful to Sec. 5.1: nonlinear input is rejected outright.
            return BaselineRun {
                verdict: BaselineVerdict::Rejected(
                    "nonlinear arithmetic is not supported".to_string(),
                ),
                elapsed: started.elapsed(),
                theory_conflicts: 0,
                eager_bytes: 0,
            };
        }

        let mut solver = Solver::from_cnf(problem.cnf());
        let mut hook = TightHook::new(problem, &self.options, started);
        let result = solver.solve_with_theory(&mut hook);
        let verdict = if hook.timed_out {
            BaselineVerdict::Timeout
        } else {
            match result {
                SolveResult::Sat(boolean) => match hook.last_model.take() {
                    Some(arith) => BaselineVerdict::Sat(Box::new(AbModel { boolean, arith })),
                    None => BaselineVerdict::Unknown,
                },
                SolveResult::Unsat => {
                    if hook.had_unknown {
                        BaselineVerdict::Unknown
                    } else {
                        BaselineVerdict::Unsat
                    }
                }
                SolveResult::Unknown => BaselineVerdict::Unknown,
            }
        };
        BaselineRun {
            verdict,
            elapsed: started.elapsed(),
            theory_conflicts: solver.stats().theory_conflicts,
            eager_bytes: 0,
        }
    }
}

/// The DPLL(T) attachment: keeps an incremental simplex synchronised with
/// the CDCL assignment via a literal stack of `push`/`pop` scopes.
struct TightHook<'a> {
    problem: &'a AbProblem,
    simplex: Simplex,
    /// Theory literals currently asserted, in scope order; one simplex
    /// scope per entry.
    stack: Vec<Lit>,
    /// Constraint ids asserted per scope (for conflict mapping).
    scope_cids: Vec<Vec<(usize, Lit)>>,
    options: &'a MathSatLikeOptions,
    started: Instant,
    deadline: Option<Duration>,
    timed_out: bool,
    had_unknown: bool,
    last_model: Option<absolver_core::ArithModel>,
    /// All constraint-id → literal mappings ever asserted (ids are global
    /// and monotone in `Simplex`).
    cid_lit: Vec<(usize, Lit)>,
}

impl<'a> TightHook<'a> {
    fn new(
        problem: &'a AbProblem,
        options: &'a MathSatLikeOptions,
        started: Instant,
    ) -> TightHook<'a> {
        TightHook {
            problem,
            simplex: Simplex::with_vars(problem.arith_vars().len()),
            stack: Vec::new(),
            scope_cids: Vec::new(),
            options,
            started,
            deadline: options.time_limit,
            timed_out: false,
            had_unknown: false,
            last_model: None,
            cid_lit: Vec::new(),
        }
    }

    fn check_deadline(&mut self) -> bool {
        if let Some(limit) = self.deadline {
            if self.started.elapsed() >= limit {
                self.timed_out = true;
                return true;
            }
        }
        false
    }

    /// The single-constraint implications of a theory literal, if they can
    /// be asserted incrementally (negated equalities and negated
    /// conjunctions cannot; they are left for the final model check).
    fn implications(&self, lit: Lit) -> Option<Vec<LinearConstraint>> {
        let def = self.problem.def(lit.var())?;
        if lit.is_positive() {
            let mut out = Vec::new();
            for c in &def.constraints {
                let (lin, k) = c.to_affine()?;
                out.push(LinearConstraint::new(lin.clone(), c.op, &c.rhs - k));
            }
            Some(out)
        } else if def.constraints.len() == 1 {
            let c = &def.constraints[0];
            let op = c.op.negate()?;
            let (lin, k) = c.to_affine()?;
            Some(vec![LinearConstraint::new(lin.clone(), op, &c.rhs - k)])
        } else {
            None
        }
    }

    /// Synchronises the simplex scopes with the current assignment and
    /// returns a conflict clause if an assertion or check fails.
    fn sync(&mut self, assignment: &Assignment) -> Option<Vec<Lit>> {
        // Literals determined by the current assignment.
        let determined = |lit: Lit| assignment.lit_value(lit) == Tri::True;

        // Pop scopes whose literal is no longer asserted; a stale literal
        // in the middle forces popping everything above it too.
        let keep = self.stack.iter().take_while(|&&l| determined(l)).count();
        while self.stack.len() > keep {
            self.stack.pop();
            self.scope_cids.pop();
            self.simplex.pop();
            // cid→lit mappings of popped scopes stay valid: ids are unique.
        }

        // Push newly determined theory literals.
        for (var, _) in self.problem.defs() {
            let lit = match assignment.value(var) {
                Tri::True => var.positive(),
                Tri::False => var.negative(),
                Tri::Unknown => continue,
            };
            if self.stack.contains(&lit) {
                continue;
            }
            let Some(constraints) = self.implications(lit) else {
                continue; // handled by the final model check
            };
            self.simplex.push();
            self.stack.push(lit);
            let mut cids = Vec::new();
            for c in &constraints {
                match self.simplex.assert_constraint(c) {
                    Ok(cid) => {
                        cids.push((cid, lit));
                        self.cid_lit.push((cid, lit));
                    }
                    Err(conflict) => {
                        // Immediate bound conflict. The new constraint's id
                        // is `next` − 1 and maps to `lit`.
                        self.cid_lit.push((self.simplex_last_cid(), lit));
                        self.scope_cids.push(cids);
                        return Some(self.conflict_clause(&conflict, lit));
                    }
                }
            }
            self.scope_cids.push(cids);
        }

        match self.simplex.check() {
            CheckResult::Sat => None,
            CheckResult::Unsat(core) => Some(self.conflict_clause(&core, self.stack[0])),
        }
    }

    fn simplex_last_cid(&self) -> usize {
        // `assert_constraint` increments the id even on failure.
        self.cid_lit.last().map(|&(c, _)| c + 1).unwrap_or(0)
    }

    /// Builds a blocking clause from simplex constraint ids.
    fn conflict_clause(&self, core: &[usize], fallback: Lit) -> Vec<Lit> {
        let mut lits: Vec<Lit> = core
            .iter()
            .map(|cid| {
                self.cid_lit
                    .iter()
                    .find(|&&(c, _)| c == *cid)
                    .map(|&(_, l)| !l)
                    .unwrap_or(!fallback)
            })
            .collect();
        lits.sort_unstable();
        lits.dedup();
        lits
    }

    /// Complete precise check on a total Boolean model (covers integer
    /// variables and negated equalities the incremental path skipped).
    fn final_check(&mut self, assignment: &Assignment) -> TheoryResponse {
        let mut items = Vec::new();
        let mut involved = Vec::new();
        for (var, def) in self.problem.defs() {
            let (lit, positive) = match assignment.value(var) {
                Tri::True => (var.positive(), true),
                Tri::False => (var.negative(), false),
                Tri::Unknown => continue,
            };
            involved.push(lit);
            let tag = involved.len() - 1;
            if positive {
                for c in &def.constraints {
                    items.push(TheoryItem {
                        tag,
                        constraint: std::sync::Arc::new(c.clone()),
                        positive: true,
                    });
                }
            } else if def.constraints.len() == 1 {
                items.push(TheoryItem {
                    tag,
                    constraint: std::sync::Arc::new(def.constraints[0].clone()),
                    positive: false,
                });
            } else {
                // Negated conjunction: cannot express in one item list;
                // treat as unknown (the harness never produces these for
                // the baseline workloads).
                self.had_unknown = true;
                return TheoryResponse::Conflict(involved.iter().map(|&l| !l).collect());
            }
        }
        let kinds: Vec<VarKind> = self.problem.arith_vars().iter().map(|v| v.kind).collect();
        let ranges: Vec<Interval> = self.problem.arith_vars().iter().map(|v| v.range).collect();
        let mut linear: Vec<Box<dyn LinearBackend>> = vec![Box::new(SimplexLinear::new())];
        let mut nonlinear: Vec<Box<dyn NonlinearBackend>> = Vec::new();
        let mut ctx = TheoryContext {
            num_vars: kinds.len(),
            kinds: &kinds,
            ranges: &ranges,
            linear: &mut linear,
            nonlinear: &mut nonlinear,
            budget: TheoryBudget::default(),
            timing: Default::default(),
            sink: None,
            incremental: None,
            lin_activity: Default::default(),
        };
        match check(&items, &mut ctx) {
            TheoryVerdict::Sat(model) => {
                self.last_model = Some(model);
                TheoryResponse::Ok
            }
            TheoryVerdict::Unsat(tags) => {
                TheoryResponse::Conflict(tags.iter().map(|&t| !involved[t]).collect())
            }
            TheoryVerdict::Unknown => {
                self.had_unknown = true;
                TheoryResponse::Conflict(involved.iter().map(|&l| !l).collect())
            }
        }
    }
}

impl TheoryHook for TightHook<'_> {
    fn wants_fixpoint_checks(&self) -> bool {
        self.options.eager_fixpoint_checks
    }

    fn on_fixpoint(&mut self, assignment: &Assignment) -> TheoryResponse {
        if self.check_deadline() {
            // Force the search to stop; the wrapper reports Timeout.
            return TheoryResponse::Conflict(Vec::new());
        }
        match self.sync(assignment) {
            Some(clause) => TheoryResponse::Conflict(clause),
            None => TheoryResponse::Ok,
        }
    }

    fn on_model(&mut self, assignment: &Assignment) -> TheoryResponse {
        if self.check_deadline() {
            return TheoryResponse::Conflict(Vec::new());
        }
        self.final_check(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absolver_core::VarKind;
    use absolver_linear::CmpOp;
    use absolver_logic::Var;
    use absolver_nonlinear::Expr;
    use absolver_num::Rational;

    fn q(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn rejects_nonlinear() {
        let text = "p cnf 1 1\n1 0\nc def real 1 x * y >= 1\n";
        let p: AbProblem = text.parse().unwrap();
        let run = MathSatLike::new().solve(&p);
        assert!(matches!(run.verdict, BaselineVerdict::Rejected(_)));
    }

    #[test]
    fn solves_linear_sat() {
        let text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x + y <= 10\nc def real 2 x - y >= 2\n";
        let p: AbProblem = text.parse().unwrap();
        let run = MathSatLike::new().solve(&p);
        match run.verdict {
            BaselineVerdict::Sat(m) => assert!(m.satisfies(&p, 1e-9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn solves_linear_unsat() {
        let text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n";
        let p: AbProblem = text.parse().unwrap();
        let run = MathSatLike::new().solve(&p);
        assert_eq!(run.verdict, BaselineVerdict::Unsat);
        assert!(run.theory_conflicts >= 1);
    }

    #[test]
    fn boolean_structure_with_theory_pruning() {
        // (a ∨ b) ∧ (¬a ∨ c): theory eliminates some combinations.
        let text = "p cnf 3 2\n1 2 0\n-1 3 0\nc def real 1 x >= 5\nc def real 2 x <= 3\nc def real 3 x <= 100\n";
        let p: AbProblem = text.parse().unwrap();
        let run = MathSatLike::new().solve(&p);
        match run.verdict {
            BaselineVerdict::Sat(m) => assert!(m.satisfies(&p, 1e-9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn agrees_with_orchestrator_on_random_linear_problems() {
        use absolver_testkit::{Rng, TestRng};
        let mut rng = TestRng::seed_from_u64(0x7167_B00C);
        for round in 0..30 {
            let mut b = AbProblem::builder();
            let n_vars = rng.gen_range(1..3usize);
            let vars: Vec<usize> = (0..n_vars)
                .map(|i| b.arith_var(&format!("v{i}"), VarKind::Real))
                .collect();
            let n_atoms = rng.gen_range(1..5usize);
            let atoms: Vec<Var> = (0..n_atoms)
                .map(|_| {
                    let v = vars[rng.gen_range(0..vars.len())];
                    let k = rng.gen_range(-3i64..=3);
                    let rhs = rng.gen_range(-5i64..=5);
                    let op = match rng.gen_range(0..5) {
                        0 => CmpOp::Lt,
                        1 => CmpOp::Le,
                        2 => CmpOp::Gt,
                        3 => CmpOp::Ge,
                        _ => CmpOp::Eq,
                    };
                    b.atom(Expr::int(k) * Expr::var(v), op, q(rhs))
                })
                .collect();
            for _ in 0..rng.gen_range(1..4usize) {
                let len = rng.gen_range(1..=2usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let a = atoms[rng.gen_range(0..atoms.len())];
                        if rng.gen_bool(0.5) {
                            a.positive()
                        } else {
                            a.negative()
                        }
                    })
                    .collect();
                b.add_clause(lits);
            }
            let p = b.build();
            let tight = MathSatLike::new().solve(&p);
            let loose = absolver_core::Orchestrator::with_defaults()
                .solve(&p)
                .unwrap();
            match (&tight.verdict, &loose) {
                (BaselineVerdict::Sat(m), o) => {
                    assert!(o.is_sat(), "round {round}: tight sat, loose {o:?}");
                    assert!(m.satisfies(&p, 1e-9), "round {round}");
                }
                (BaselineVerdict::Unsat, o) => {
                    assert!(o.is_unsat(), "round {round}: tight unsat, loose {o:?}")
                }
                other => panic!("round {round}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn timeout_fires() {
        // A pigeonhole-flavoured hard instance with a zero deadline.
        let text = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n";
        let p: AbProblem = text.parse().unwrap();
        let mut solver = MathSatLike {
            options: MathSatLikeOptions {
                time_limit: Some(Duration::ZERO),
                ..MathSatLikeOptions::default()
            },
        };
        assert_eq!(solver.solve(&p).verdict, BaselineVerdict::Timeout);
    }

    #[test]
    fn lazy_mode_matches_eager_mode() {
        let text = "p cnf 3 3\n1 2 0\n-1 3 0\n2 3 0\nc def real 1 x >= 5\nc def real 2 x <= 3\nc def real 3 x <= 100\n";
        let p: AbProblem = text.parse().unwrap();
        let eager = MathSatLike::new().solve(&p);
        let mut lazy = MathSatLike {
            options: MathSatLikeOptions {
                eager_fixpoint_checks: false,
                ..Default::default()
            },
        };
        let lazy_run = lazy.solve(&p);
        assert_eq!(eager.verdict.is_sat(), lazy_run.verdict.is_sat());
    }
}
