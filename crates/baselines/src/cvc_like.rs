//! The eager validity-checker baseline (the CVC Lite role).
//!
//! CVC Lite offers "integrated specialised solvers, but in practice their
//! limitations are not always obvious to the users of such systems"
//! (paper Sec. 1.2) — in Table 3 it aborts on every Sudoku instance with
//! out-of-memory (`–*`) while remaining competitive on the small FISCHER
//! problems.
//!
//! [`CvcLike`] reproduces that profile mechanistically: before searching,
//! it runs an *eager theory-lemma instantiation* phase that saturates the
//! atom set under pairwise Fourier–Motzkin resolution (deriving the
//! variable-free consequences a validity checker would precompute). The
//! derived constraints are materialised, their memory is accounted, and
//! the phase aborts with [`BaselineVerdict::OutOfMemory`] when the budget
//! is exceeded — which is exactly what happens on the dense disequality
//! systems of integer Sudoku encodings, and never on the sparse FISCHER
//! timing constraints. If saturation fits in memory, a standard lazy
//! search (with the tight simplex) finishes the job.

use crate::common::{BaselineRun, BaselineVerdict};
use crate::mathsat_like::{MathSatLike, MathSatLikeOptions};
use absolver_core::AbProblem;
use absolver_linear::{CmpOp, LinExpr, LinearConstraint};
use absolver_num::Rational;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration of the eager baseline.
#[derive(Debug, Clone)]
pub struct CvcLikeOptions {
    /// Byte budget of the eager lemma store (estimated from materialised
    /// constraint sizes).
    pub memory_budget: usize,
    /// Saturation rounds of the eager phase.
    pub saturation_rounds: usize,
    /// Wall-clock limit for the whole run.
    pub time_limit: Option<Duration>,
}

impl Default for CvcLikeOptions {
    fn default() -> Self {
        CvcLikeOptions {
            memory_budget: 128 << 20, // 128 MiB
            saturation_rounds: 2,
            time_limit: None,
        }
    }
}

/// An eager Boolean-linear solver with a hard memory budget.
#[derive(Debug, Default)]
pub struct CvcLike {
    /// Options.
    pub options: CvcLikeOptions,
}

/// Estimated heap size of a materialised lemma.
fn constraint_bytes(c: &LinearConstraint) -> usize {
    // A validity checker's term DAG spends one node per monomial (tag,
    // child pointers, arbitrary-precision coefficient, hash-cons entry)
    // plus the comparison node and its index entries.
    256 + c.expr.terms().len() * 208
}

impl CvcLike {
    /// Creates the baseline with default options.
    pub fn new() -> CvcLike {
        CvcLike::default()
    }

    /// Solves an AB-problem (Boolean + linear only).
    pub fn solve(&mut self, problem: &AbProblem) -> BaselineRun {
        let started = Instant::now();
        if problem.num_nonlinear() > 0 {
            return BaselineRun {
                verdict: BaselineVerdict::Rejected(
                    "nonlinear arithmetic is not supported".to_string(),
                ),
                elapsed: started.elapsed(),
                theory_conflicts: 0,
                eager_bytes: 0,
            };
        }

        // ---- Eager phase: saturate the atom set under FM resolution ----
        let (bytes, oom) = self.saturate(problem, started);
        if oom {
            return BaselineRun {
                verdict: BaselineVerdict::OutOfMemory,
                elapsed: started.elapsed(),
                theory_conflicts: 0,
                eager_bytes: bytes,
            };
        }
        if let Some(limit) = self.options.time_limit {
            if started.elapsed() >= limit {
                return BaselineRun {
                    verdict: BaselineVerdict::Timeout,
                    elapsed: started.elapsed(),
                    theory_conflicts: 0,
                    eager_bytes: bytes,
                };
            }
        }

        // ---- Search phase ----------------------------------------------
        let remaining = self
            .options
            .time_limit
            .map(|limit| limit.saturating_sub(started.elapsed()));
        let mut search = MathSatLike {
            options: MathSatLikeOptions {
                time_limit: remaining,
                eager_fixpoint_checks: true,
            },
        };
        let mut run = search.solve(problem);
        run.elapsed = started.elapsed();
        run.eager_bytes = bytes;
        run
    }

    /// Materialises the FM saturation of the problem's atoms (both
    /// polarities). Returns `(bytes, out_of_memory)`.
    fn saturate(&self, problem: &AbProblem, started: Instant) -> (usize, bool) {
        // Seed: every atom constraint and its negation(s), normalised to
        // `expr ≤/< rhs` form.
        let mut store: Vec<LinearConstraint> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut bytes = 0usize;
        let add = |c: LinearConstraint,
                   bytes: &mut usize,
                   store: &mut Vec<LinearConstraint>,
                   seen: &mut HashSet<String>|
         -> bool {
            if c.expr.is_zero() {
                return true;
            }
            let key = c.to_string();
            if seen.insert(key) {
                *bytes += constraint_bytes(&c);
                store.push(c);
            }
            *bytes <= self.options.memory_budget
        };

        for (_, def) in problem.defs() {
            for c in &def.constraints {
                let Some((lin, k)) = c.to_affine() else {
                    continue;
                };
                let rhs = &c.rhs - k;
                for upper in normalise_to_upper(lin, c.op, &rhs) {
                    if !add(upper, &mut bytes, &mut store, &mut seen) {
                        return (bytes, true);
                    }
                }
                for neg in c.negate() {
                    if let Some((nl, nk)) = neg.to_affine() {
                        let nrhs = &neg.rhs - nk;
                        for upper in normalise_to_upper(nl, neg.op, &nrhs) {
                            if !add(upper, &mut bytes, &mut store, &mut seen) {
                                return (bytes, true);
                            }
                        }
                    }
                }
            }
        }

        // Saturation rounds: resolve pairs on each shared variable. The
        // budget is checked on every materialised resolvent, so the store
        // never grows past `memory_budget` bytes before aborting. The
        // round's frontier is the store prefix present at round entry —
        // indices, not a deep copy of every constraint.
        for _round in 0..self.options.saturation_rounds {
            let frontier = store.len();
            for i in 0..frontier {
                if let Some(limit) = self.options.time_limit {
                    if started.elapsed() >= limit {
                        // Ran out of time while instantiating: report the
                        // phase as exhausted rather than continuing.
                        return (bytes, bytes > self.options.memory_budget);
                    }
                }
                for j in i + 1..frontier {
                    let resolvents = fm_resolvents(&store[i], &store[j]);
                    for resolvent in resolvents {
                        if !add(resolvent, &mut bytes, &mut store, &mut seen) {
                            return (bytes, true);
                        }
                    }
                }
            }
            if store.len() == frontier {
                break;
            }
        }
        (bytes, false)
    }
}

/// Normalises `lin ⋈ rhs` to one or two upper-bound forms (`≤`/`<`).
fn normalise_to_upper(lin: &LinExpr, op: CmpOp, rhs: &Rational) -> Vec<LinearConstraint> {
    let neg = |l: &LinExpr| {
        let mut n = l.clone();
        n.scale(&-Rational::one());
        n
    };
    match op {
        CmpOp::Le | CmpOp::Lt => vec![LinearConstraint::new(lin.clone(), op, rhs.clone())],
        CmpOp::Ge => vec![LinearConstraint::new(neg(lin), CmpOp::Le, -rhs.clone())],
        CmpOp::Gt => vec![LinearConstraint::new(neg(lin), CmpOp::Lt, -rhs.clone())],
        CmpOp::Eq => vec![
            LinearConstraint::new(lin.clone(), CmpOp::Le, rhs.clone()),
            LinearConstraint::new(neg(lin), CmpOp::Le, -rhs.clone()),
        ],
    }
}

/// Fourier–Motzkin resolvents of two upper-bound constraints: for every
/// variable with opposite-sign coefficients, the positive combination that
/// eliminates it.
fn fm_resolvents(a: &LinearConstraint, b: &LinearConstraint) -> Vec<LinearConstraint> {
    let mut out = Vec::new();
    for (v, ca) in a.expr.terms() {
        let cb = b.expr.coeff(*v);
        if cb.is_zero() || ca.signum() == cb.signum() {
            continue;
        }
        // a_scaled = a / |ca|, b_scaled = b / |cb|; sum eliminates v.
        let mut lhs = a.expr.clone();
        lhs.scale(&ca.abs().recip());
        lhs.add_scaled(&b.expr, &cb.abs().recip());
        let bound = &a.rhs / &ca.abs() + &b.rhs / &cb.abs();
        let op = if a.op == CmpOp::Lt || b.op == CmpOp::Lt {
            CmpOp::Lt
        } else {
            CmpOp::Le
        };
        if !lhs.is_zero() {
            out.push(LinearConstraint::new(lhs, op, bound));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonlinear() {
        let p: AbProblem = "p cnf 1 1\n1 0\nc def real 1 x * x >= 1\n".parse().unwrap();
        let run = CvcLike::new().solve(&p);
        assert!(matches!(run.verdict, BaselineVerdict::Rejected(_)));
    }

    #[test]
    fn solves_small_linear_problems() {
        let sat: AbProblem =
            "p cnf 2 2\n1 0\n2 0\nc def real 1 x + y <= 10\nc def real 2 x - y >= 2\n"
                .parse()
                .unwrap();
        let run = CvcLike::new().solve(&sat);
        match run.verdict {
            BaselineVerdict::Sat(m) => assert!(m.satisfies(&sat, 1e-9)),
            other => panic!("{other:?}"),
        }
        assert!(run.eager_bytes > 0, "eager phase materialises lemmas");

        let unsat: AbProblem = "p cnf 2 2\n1 0\n2 0\nc def real 1 x >= 5\nc def real 2 x <= 3\n"
            .parse()
            .unwrap();
        assert_eq!(CvcLike::new().solve(&unsat).verdict, BaselineVerdict::Unsat);
    }

    #[test]
    fn memory_budget_aborts_dense_systems() {
        // A Sudoku-flavoured system in miniature: all-pairs disequalities
        // plus overlapping multi-variable sum equalities. FM saturation of
        // the wide sums against everything else explodes combinatorially,
        // so a small budget must abort the eager phase.
        let mut text = String::from("p cnf 64 0\n");
        let mut defs = String::new();
        let mut atom = 1;
        for i in 0..8 {
            for j in (i + 1)..8 {
                defs.push_str(&format!("c def int {atom} c{i} - c{j} = 0\n"));
                text.push_str(&format!("-{atom} 0\n"));
                atom += 1;
            }
        }
        // Overlapping group sums (like Sudoku's row/column/box sums).
        for start in 0..6 {
            let lhs: Vec<String> = (start..start + 3).map(|i| format!("c{i}")).collect();
            defs.push_str(&format!(
                "c def int {atom} {} = {}\n",
                lhs.join(" + "),
                6 + start
            ));
            text.push_str(&format!("{atom} 0\n"));
            atom += 1;
        }
        // Unit bounds with distinct values (clues).
        for i in 0..8 {
            defs.push_str(&format!("c def int {atom} c{i} >= {}\n", 1 + (i % 3)));
            text.push_str(&format!("{atom} 0\n"));
            atom += 1;
            defs.push_str(&format!("c def int {atom} c{i} <= {}\n", 9 - (i % 4)));
            text.push_str(&format!("{atom} 0\n"));
            atom += 1;
        }
        let full = format!("{text}{defs}");
        let p: AbProblem = full.parse().unwrap();
        let mut solver = CvcLike {
            options: CvcLikeOptions {
                memory_budget: 50_000,
                ..CvcLikeOptions::default()
            },
        };
        let run = solver.solve(&p);
        assert_eq!(run.verdict, BaselineVerdict::OutOfMemory);
        assert!(run.eager_bytes >= 50_000);
    }

    #[test]
    fn fm_resolvents_are_implied() {
        // x + y ≤ 5 and −x ≤ −2 resolve to y ≤ 3.
        let a = LinearConstraint::new(
            LinExpr::from_terms([(0, Rational::one()), (1, Rational::one())]),
            CmpOp::Le,
            Rational::from_int(5),
        );
        let b = LinearConstraint::new(
            LinExpr::from_terms([(0, -Rational::one())]),
            CmpOp::Le,
            Rational::from_int(-2),
        );
        let rs = fm_resolvents(&a, &b);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].expr.coeff(1), Rational::one());
        assert_eq!(rs[0].expr.coeff(0), Rational::zero());
        assert_eq!(rs[0].rhs, Rational::from_int(3));
        // Soundness: any point satisfying a ∧ b satisfies the resolvent.
        for (x, y) in [(2i64, 3i64), (3, 1), (2, 2)] {
            let point = vec![Rational::from_int(x), Rational::from_int(y)];
            if a.eval(&point) && b.eval(&point) {
                assert!(rs[0].eval(&point));
            }
        }
    }

    #[test]
    fn normalisation_covers_all_ops() {
        let lin = LinExpr::var(0);
        let rhs = Rational::from_int(3);
        assert_eq!(normalise_to_upper(&lin, CmpOp::Le, &rhs).len(), 1);
        assert_eq!(normalise_to_upper(&lin, CmpOp::Lt, &rhs).len(), 1);
        assert_eq!(normalise_to_upper(&lin, CmpOp::Ge, &rhs).len(), 1);
        assert_eq!(normalise_to_upper(&lin, CmpOp::Gt, &rhs).len(), 1);
        assert_eq!(normalise_to_upper(&lin, CmpOp::Eq, &rhs).len(), 2);
        // Ge flips to an upper bound.
        let ge = &normalise_to_upper(&lin, CmpOp::Ge, &rhs)[0];
        assert_eq!(ge.op, CmpOp::Le);
        assert_eq!(ge.rhs, Rational::from_int(-3));
        assert_eq!(ge.expr.coeff(0), -Rational::one());
    }
}
