//! Quickstart: the running example of the paper (Fig. 1 / Fig. 2).
//!
//! The MATLAB/Simulink model of Fig. 1 computes
//! `Out1 = ((i ≥ 0 ∧ j ≥ 0)) ∧ (¬(2i + j < 10) ∨ (i + j < 5))
//!        ∧ (a·x + 3.5/(4 − y) + 2y ≥ 7.1)`
//! and Fig. 2 shows its encoding in ABsolver's extended DIMACS format.
//! This example parses that exact text, solves it, validates the model,
//! and round-trips the problem through the writer. It then builds the same
//! problem again with the programmatic API (the paper's "C++ API" route).
//!
//! Run with: `cargo run --release --example quickstart`

use absolver::core::{parser, AbProblem, Orchestrator, VarKind};
use absolver::linear::CmpOp;
use absolver::nonlinear::{Expr, NlConstraint};
use absolver::num::{Interval, Rational};

const FIG2: &str = "\
p cnf 4 3
1 0
-2 3 0
4 0
c def int 1 i >= 0
c def int 1 j >= 0
c def int 2 2*i + j < 10
c def int 3 i + j < 5
c def real 4 a * x + 3.5 / ( 4 - y ) + 2 * y >= 7.1
c range a -10 10
c range x -10 10
c range y -10 10
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Route 1: the textual input language -------------------------
    let problem: AbProblem = FIG2.parse()?;
    println!("parsed the Fig. 2 problem:");
    println!("  clauses:     {}", problem.cnf().len());
    println!(
        "  definitions: {} ({} constraints: {} linear, {} nonlinear)",
        problem.num_defs(),
        problem.num_constraints(),
        problem.num_linear(),
        problem.num_nonlinear()
    );

    let mut orc = Orchestrator::with_defaults();
    let outcome = orc.solve(&problem)?;
    let model = outcome.model().expect("the paper's example is satisfiable");
    assert!(model.satisfies(&problem, 1e-6));
    println!("\nverdict: SAT; a witness assignment:");
    for (id, var) in problem.arith_vars().iter().enumerate() {
        println!(
            "  {} ({}) = {:.4}",
            var.name,
            var.kind,
            model.arith.value_f64(id).unwrap_or(f64::NAN)
        );
    }
    println!("solver statistics: {}", orc.stats());

    // Round-trip through the writer: the output is still plain DIMACS to
    // any SAT solver unaware of the extension comments.
    let rendered = parser::write(&problem);
    let reparsed: AbProblem = rendered.parse()?;
    assert_eq!(reparsed.num_defs(), problem.num_defs());
    println!(
        "\nwriter round-trip OK ({} bytes of extended DIMACS)",
        rendered.len()
    );

    // ---- Route 2: the programmatic builder API ------------------------
    let mut b = AbProblem::builder();
    let i = b.arith_var("i", VarKind::Int);
    let j = b.arith_var("j", VarKind::Int);
    let a = b.arith_var("a", VarKind::Real);
    let x = b.arith_var("x", VarKind::Real);
    let y = b.arith_var("y", VarKind::Real);
    for v in [a, x, y] {
        b.set_range(v, Interval::new(-10.0, 10.0));
    }
    let v1 = b.atom(Expr::var(i), CmpOp::Ge, Rational::zero());
    b.define(
        v1,
        NlConstraint::new(Expr::var(j), CmpOp::Ge, Rational::zero()),
    );
    let v2 = b.atom(
        Expr::int(2) * Expr::var(i) + Expr::var(j),
        CmpOp::Lt,
        Rational::from_int(10),
    );
    let v3 = b.atom(
        Expr::var(i) + Expr::var(j),
        CmpOp::Lt,
        Rational::from_int(5),
    );
    let v4 = b.atom(
        Expr::var(a) * Expr::var(x)
            + Expr::constant("3.5".parse()?) / (Expr::int(4) - Expr::var(y))
            + Expr::int(2) * Expr::var(y),
        CmpOp::Ge,
        "7.1".parse()?,
    );
    b.add_clause([v1.positive()]);
    b.add_clause([v2.negative(), v3.positive()]);
    b.add_clause([v4.positive()]);
    let built = b.build();
    let outcome2 = orc.solve(&built)?;
    assert!(outcome2.is_sat(), "builder route agrees");
    println!("builder API route: SAT as well — both input layers agree");
    Ok(())
}
