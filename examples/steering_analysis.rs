//! Reproduces the paper's industrial case study (Sec. 3): the synthetic
//! car steering-control model is converted through the Fig. 3 pipeline
//! (diagram → LUSTRE → AB-problem) and analysed by ABsolver.
//!
//! Run with: `cargo run --release --example steering_analysis`

use absolver::core::{Orchestrator, Outcome};
use absolver::model::{diagram_to_lustre, steering_diagram, steering_problem};

fn main() {
    let diagram = steering_diagram();
    let (lustre, _ranges) = diagram_to_lustre(&diagram);
    println!("== LUSTRE intermediate representation (excerpt) ==");
    let text = lustre.to_string();
    for line in text.lines().take(6) {
        println!("{line}");
    }
    println!("  ... ({} equations total)\n", lustre.equations.len());

    let problem = steering_problem();
    println!("== Conversion statistics (paper Table 1 row 1) ==");
    println!("CNF clauses:          {}", problem.cnf().len());
    println!("constraints:          {}", problem.num_constraints());
    println!("  linear:             {}", problem.num_linear());
    println!("  nonlinear:          {}", problem.num_nonlinear());
    println!();

    let mut orc = Orchestrator::with_defaults();
    let outcome = orc.solve(&problem).expect("within iteration budget");
    match &outcome {
        Outcome::Sat(model) => {
            println!("verdict: SAT — the safety monitor can be violated");
            println!("counterexample scenario:");
            for (i, v) in problem.arith_vars().iter().enumerate() {
                let value = model.arith.value_f64(i).unwrap_or(f64::NAN);
                println!("  {:12} = {value:.4}", v.name);
            }
            assert!(model.satisfies(&problem, 1e-5), "model must validate");
            // Cross-check on the original diagram.
            let inputs: Vec<f64> = (0..problem.arith_vars().len())
                .map(|i| model.arith.value_f64(i).unwrap())
                .collect();
            let sim = diagram.simulate(&inputs);
            println!("diagram simulation of the scenario: safe = {}", sim[0]);
        }
        Outcome::Unsat => println!("verdict: UNSAT — the monitor is safe for all inputs"),
        Outcome::Unknown => println!("verdict: UNKNOWN"),
    }
    println!("\nsolver statistics: {}", orc.stats());
}
