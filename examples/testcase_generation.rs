//! Automatic test-case generation with decision coverage (paper Sec. 6).
//!
//! "Further possible use-cases of ABsolver include the automatic
//! generation of test cases … common coverage metrics like path coverage
//! can be obtained for free in this setting."
//!
//! The model under test is a small plausibility monitor for a speed
//! sensor pair: the reading is accepted when the two channels agree
//! within a tolerance, the average is inside the physical range, and the
//! implied kinetic energy is not extreme. For every relational decision
//! of the model, the solver derives concrete input vectors driving the
//! decision both ways; expected outputs come from simulating the model.
//!
//! Run with: `cargo run --release --example testcase_generation`

use absolver::core::VarKind;
use absolver::linear::CmpOp;
use absolver::model::{generate_tests, Block, Diagram, LogicOp, UnaryFn};
use absolver::num::{Interval, Rational};

fn q(s: &str) -> Rational {
    s.parse().expect("rational literal")
}

fn monitor() -> Diagram {
    let mut d = Diagram::new();
    let a = d
        .inport("speed_a", VarKind::Real, Interval::new(-50.0, 150.0))
        .unwrap();
    let b = d
        .inport("speed_b", VarKind::Real, Interval::new(-50.0, 150.0))
        .unwrap();

    // Channels agree: |a − b| ≤ 5.
    let diff = d.sub(a, b).unwrap();
    let abs_diff = d.add(Block::Unary(UnaryFn::Abs), vec![diff]).unwrap();
    let five = d.constant(q("5")).unwrap();
    let agree = d
        .add(Block::RelOp(CmpOp::Le), vec![abs_diff, five])
        .unwrap();

    // Average inside the physical range [0, 120].
    let sum = d.sum2(a, b).unwrap();
    let avg = d.add(Block::Gain(q("0.5")), vec![sum]).unwrap();
    let zero = d.constant(q("0")).unwrap();
    let max = d.constant(q("120")).unwrap();
    let lo_ok = d.add(Block::RelOp(CmpOp::Ge), vec![avg, zero]).unwrap();
    let hi_ok = d.add(Block::RelOp(CmpOp::Le), vec![avg, max]).unwrap();

    // Kinetic-energy plausibility: avg² ≤ 10000.
    let sq = d.add(Block::Unary(UnaryFn::Square), vec![avg]).unwrap();
    let cap = d.constant(q("10000")).unwrap();
    let kin_ok = d.add(Block::RelOp(CmpOp::Le), vec![sq, cap]).unwrap();

    let ok = d
        .add(
            Block::Logic(LogicOp::And),
            vec![agree, lo_ok, hi_ok, kin_ok],
        )
        .unwrap();
    d.outport("accept", ok).unwrap();
    d
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = monitor();
    let suite = generate_tests(&d, "accept")?;

    println!("{suite}");
    println!("generated test bench:");
    println!("{:>10} {:>10}  expected", "speed_a", "speed_b");
    for v in &suite.vectors {
        println!(
            "{:>10.3} {:>10.3}  accept={}",
            v.inputs[0], v.inputs[1], v.outputs[0]
        );
    }

    println!("\ncoverage targets:");
    for t in &suite.targets {
        let status = match t.covered_by {
            Some(i) => format!("covered by test #{}", i + 1),
            None => "UNREACHABLE".to_string(),
        };
        println!("  {} = {:<5}  {}", t.description, t.polarity, status);
    }

    // Every decision of this monitor is coverable both ways.
    assert_eq!(suite.unreachable(), 0, "all targets reachable");
    // Every expected output re-validates against a fresh simulation.
    for v in &suite.vectors {
        assert_eq!(d.simulate(&v.inputs), v.outputs);
    }
    println!(
        "\nall {} vectors re-validated against the model",
        suite.vectors.len()
    );
    Ok(())
}
