//! Sudoku as a mixed Boolean/integer AB-problem (paper Sec. 5.3).
//!
//! "Having a solver at hand which solves Boolean as well as linear
//! problems, the Sudoku puzzle can be tackled more efficiently as a mixed
//! problem and the encoding is more natural as it can make use of
//! integers." This example generates a puzzle, encodes it the mixed way,
//! solves it, prints the grid — and then uses the all-models bookkeeping
//! to confirm the puzzle has exactly one solution.
//!
//! Run with: `cargo run --release --example sudoku_solver`

use absolver::core::{Orchestrator, Outcome};
use absolver_bench::sudoku::{
    decode, encode_mixed, extends, generate, is_valid_solution, Difficulty,
};

fn print_grid(grid: &[[u8; 9]; 9]) {
    for (r, row) in grid.iter().enumerate() {
        if r % 3 == 0 {
            println!("+-------+-------+-------+");
        }
        for (c, &v) in row.iter().enumerate() {
            if c % 3 == 0 {
                print!("| ");
            }
            if v == 0 {
                print!(". ");
            } else {
                print!("{v} ");
            }
        }
        println!("|");
    }
    println!("+-------+-------+-------+");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (puzzle, _) = generate(20060523, Difficulty::Hard);
    println!(
        "puzzle ({} clues):",
        puzzle.iter().flatten().filter(|&&v| v != 0).count()
    );
    print_grid(&puzzle);

    let problem = encode_mixed(&puzzle);
    println!(
        "\nmixed encoding: {} clauses, {} integer-equality atoms over {} cells",
        problem.cnf().len(),
        problem.num_defs(),
        problem.arith_vars().len()
    );

    let mut orc = Orchestrator::with_defaults();
    let started = std::time::Instant::now();
    let outcome = orc.solve(&problem)?;
    let elapsed = started.elapsed();
    let Outcome::Sat(model) = outcome else {
        panic!("generated puzzles are always solvable");
    };
    let grid = decode(&problem, &model).expect("integral model");
    assert!(is_valid_solution(&grid), "solver must produce a valid grid");
    assert!(extends(&puzzle, &grid), "solution must respect the clues");
    println!("\nsolved in {elapsed:.2?}:");
    print_grid(&grid);

    // All-models bookkeeping (the LSAT role): enumerate up to 2 solutions.
    let solutions = orc.solve_all(&problem, 2)?;
    println!(
        "solution count (capped at 2): {} — the puzzle {}",
        solutions.len(),
        if solutions.len() == 1 {
            "is unique"
        } else {
            "has multiple solutions"
        }
    );
    Ok(())
}
