//! Consistency-based diagnosis via all-models enumeration.
//!
//! The paper motivates the LSAT backend with exactly this application:
//! "the use of LSAT is desirable for applications such as
//! consistency-based diagnosis, where more than one Boolean solution may
//! be required to reason about the failure state of systems" (Sec. 4).
//!
//! The system under diagnosis: one physical quantity `x`, read through
//! three channels with different transfer functions —
//!
//! * sensor 1 (direct):      reads `x`
//! * sensor 2 (amplifier):   reads `2·x`
//! * sensor 3 (offset):      reads `x + 5`
//!
//! A *healthy* channel reports its transfer function exactly; a faulty one
//! may report anything. Given the observation `(10, 30, 15)` the three
//! channels disagree about `x`, so some component must be faulty.
//! Enumerating all consistent health assignments and keeping the
//! subset-minimal fault sets yields the diagnoses.
//!
//! Run with: `cargo run --release --example diagnosis`

use absolver::core::{AbProblem, Orchestrator, VarKind};
use absolver::linear::CmpOp;
use absolver::logic::Tri;
use absolver::nonlinear::Expr;
use absolver::num::Rational;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let observations = [10i64, 30, 15];
    println!(
        "observations: sensor1 = {}, sensor2 = {}, sensor3 = {}",
        observations[0], observations[1], observations[2]
    );

    // Build the diagnosis problem.
    let mut b = AbProblem::builder();
    let x = b.arith_var("x", VarKind::Real);
    // Health variables (plain Boolean — no definitions).
    let health: Vec<_> = (0..3).map(|_| b.bool_var()).collect();
    // Behaviour atoms: what a healthy channel's reading implies about x.
    let transfer: [Expr; 3] = [
        Expr::var(x),
        Expr::int(2) * Expr::var(x),
        Expr::var(x) + Expr::int(5),
    ];
    for (i, expr) in transfer.into_iter().enumerate() {
        let atom = b.atom(expr, CmpOp::Eq, Rational::from_int(observations[i]));
        // healthy_i → behaviour_i
        b.add_clause([health[i].negative(), atom.positive()]);
    }
    let problem = b.build();

    // Enumerate every consistent health assignment.
    let mut orc = Orchestrator::with_defaults();
    let models = orc.solve_all(&problem, 10_000)?;
    println!("{} consistent system states found", models.len());

    // Project onto fault sets and keep the subset-minimal ones.
    let mut fault_sets: Vec<Vec<usize>> = models
        .iter()
        .map(|m| {
            (0..3)
                .filter(|&i| m.boolean.value(health[i]) != Tri::True)
                .collect()
        })
        .collect();
    fault_sets.sort();
    fault_sets.dedup();
    let minimal: Vec<&Vec<usize>> = fault_sets
        .iter()
        .filter(|fs| {
            !fault_sets
                .iter()
                .any(|other| other.len() < fs.len() && other.iter().all(|c| fs.contains(c)))
        })
        .collect();

    println!("\nminimal diagnoses:");
    for d in &minimal {
        if d.is_empty() {
            println!("  (no fault — all observations consistent)");
        } else {
            let names: Vec<String> = d.iter().map(|&i| format!("sensor{}", i + 1)).collect();
            println!("  {{ {} }}", names.join(", "));
        }
    }

    // Sensors 1 and 3 agree on x = 10; sensor 2 claims x = 15. The two
    // subset-minimal diagnoses are therefore {sensor2} (the outvoted
    // channel is broken) and {sensor1, sensor3} (the two agreeing channels
    // are both broken) — the single-fault diagnosis {sensor2} being the
    // most plausible.
    assert_eq!(minimal.len(), 2, "two subset-minimal diagnoses expected");
    assert_eq!(minimal[0].as_slice(), &[0, 2]);
    assert_eq!(minimal[1].as_slice(), &[1]);

    // Confirm the repaired interpretation: assume sensors 1 and 3 healthy.
    let repaired = problem
        .with_clause([health[0].positive()])
        .with_clause([health[2].positive()]);
    let outcome = orc.solve(&repaired)?;
    let model = outcome.model().expect("consistent with sensor 2 ignored");
    let estimate = model.arith.value_f64(x).unwrap();
    println!("\nestimated physical quantity with sensor 2 ignored: x = {estimate}");
    assert!((estimate - 10.0).abs() < 1e-6);
    Ok(())
}
