//! Verifying Fischer's real-time mutual-exclusion protocol (the Table 2
//! workload, used here as a verification case study).
//!
//! Two queries on the event-time encoding:
//!
//! 1. *Liveness-flavoured reachability*: can process 0 enter its critical
//!    section? (SAT — with a witness schedule.)
//! 2. *Safety*: can two processes be in the critical section together?
//!    With the protocol's timing discipline `b > a` this is UNSAT — the
//!    protocol is verified; flipping to `b ≤ a` produces a concrete
//!    violation scenario.
//!
//! Run with: `cargo run --release --example fischer_verification`

use absolver::core::{Orchestrator, Outcome};
use absolver_bench::fischer::{fischer, fischer_mutex, FischerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    let mut orc = Orchestrator::with_defaults();

    // Query 1: reachability of the critical section.
    let reach = fischer(n);
    println!(
        "reachability query, {n} processes: {} clauses, {} linear atoms",
        reach.cnf().len(),
        reach.num_defs()
    );
    match orc.solve(&reach)? {
        Outcome::Sat(model) => {
            println!("SAT — process 0 can enter; witness schedule:");
            for p in 0..n {
                let set = model
                    .arith
                    .value_f64(reach.arith_var(&format!("set_{p}")).unwrap())
                    .unwrap();
                println!("  process {p} writes the lock at t = {set:.3}");
            }
            assert!(model.satisfies(&reach, 1e-9));
        }
        other => panic!("expected SAT, got {other:?}"),
    }
    println!("statistics: {}\n", orc.stats());

    // Query 2a: mutual exclusion with the safe discipline (b > a).
    let safe = fischer_mutex(FischerConfig::standard(n));
    match orc.solve(&safe)? {
        Outcome::Unsat => {
            println!("safety query (b > a): UNSAT — mutual exclusion verified")
        }
        other => panic!("protocol must be safe, got {other:?}"),
    }

    // Query 2b: a broken discipline (b ≤ a) yields a counterexample.
    let broken = fischer_mutex(FischerConfig {
        processes: n,
        a: 6,
        b: 2,
    });
    match orc.solve(&broken)? {
        Outcome::Sat(model) => {
            println!("safety query (b ≤ a): SAT — counterexample found:");
            for p in [0usize, 1] {
                let set = model
                    .arith
                    .value_f64(broken.arith_var(&format!("set_{p}")).unwrap())
                    .unwrap();
                let check = model
                    .arith
                    .value_f64(broken.arith_var(&format!("check_{p}")).unwrap())
                    .unwrap();
                println!("  process {p}: writes at {set:.3}, reads at {check:.3}");
            }
            assert!(model.satisfies(&broken, 1e-9));
        }
        other => panic!("broken discipline must be violable, got {other:?}"),
    }
    Ok(())
}
